"""Shared benchmark infrastructure.

Each bench module regenerates one of the paper's evaluation figures.
Results are cached across modules (every figure reads the same ten
baseline/speculative runs), written to ``benchmarks/results/`` and
echoed to the terminal at session end (pytest captures stdout during
tests, so the tables are printed from the sessionfinish hook).

Observability: every session also dumps per-mode run metrics
(``results/metrics.json``, via ``repro.obs.build_metrics`` — including
the ``host`` section with wall-clock and steps/sec).  Set
``REPRO_BENCH_TRACE=1`` to additionally stream every benchmark run's
structured event trace to ``results/traces/<bench>.<mode>.jsonl``.

Regression gate: set ``REPRO_BENCH_HISTORY=1`` to append each run's
tracked counters *and host metrics* to
``benchmarks/history/<bench>.jsonl`` and flag regressions — counters
against the previous record, host wall-clock/throughput against the
median of the last ≤3 (or point it at an alternate history directory).
The report is echoed at session end; flags never fail the figure tests
themselves — CI gates separately via ``python -m repro.obs.regress``.

Results store: set ``REPRO_BENCH_STORE=1`` (or a directory path) to
ingest every measurement into the experiment results store
(``benchmarks/store`` by default) — the matrix runs as ``suite=matrix``
run records, every ablation sweep point as ``suite=ablation:<name>``,
and every published figure table as a ``kind=table`` record, so
``python -m repro.obs.store tables`` can regenerate everything in
``benchmarks/results/`` from stored runs alone.
"""

from __future__ import annotations

import os
import pathlib

import pytest

RESULTS_DIR = pathlib.Path(__file__).parent / "results"
HISTORY_DIR = pathlib.Path(__file__).parent / "history"
STORE_DIR = pathlib.Path(__file__).parent / "store"

_tables: dict[str, str] = {}
_gate_report = None
_store = None
_store_batch = None


def bench_store():
    """The session's :class:`repro.obs.store.ResultsStore`, or None
    when ``REPRO_BENCH_STORE`` is unset.  All records ingested in one
    pytest session share one batch id (one sweep)."""
    global _store, _store_batch
    spec = os.environ.get("REPRO_BENCH_STORE")
    if not spec:
        return None
    if _store is None:
        from repro.obs.store import ResultsStore, new_batch_id

        root = STORE_DIR if spec == "1" else pathlib.Path(spec)
        _store = ResultsStore(root)
        _store_batch = new_batch_id()
    return _store


def record_benchmark(result, suite: str, config=None) -> None:
    """Ingest one :class:`BenchmarkResult` (all modes) as run records;
    no-op when the store is disabled."""
    store = bench_store()
    if store is None:
        return
    from repro.workloads.runner import store_records

    store.ingest_many(
        store_records(
            {result.workload.name: result},
            suite=suite,
            batch=_store_batch,
            config=config,
        )
    )


def record_counters(suite: str, bench: str, mode: str, counters,
                    config=None) -> None:
    """Ingest one bare counter measurement (ablations that run the
    pipeline directly, without a BenchmarkResult)."""
    store = bench_store()
    if store is None:
        return
    from repro.obs.store import make_record

    payload = counters.as_dict() if hasattr(counters, "as_dict") else dict(counters)
    store.ingest(
        make_record(
            bench,
            mode,
            {"counters": payload},
            suite=suite,
            config=config,
            batch=_store_batch,
        )
    )


def publish_table(name: str, table: str) -> None:
    """Save a figure table to disk and queue it for terminal echo.
    With the store enabled, the rendered text is also recorded as a
    ``kind=table`` record so the .txt is reproducible from the store."""
    RESULTS_DIR.mkdir(exist_ok=True)
    path = RESULTS_DIR / f"{name}.txt"
    path.write_text(table + "\n")
    _tables[name] = table
    store = bench_store()
    if store is not None:
        from repro.obs.store import make_record

        store.ingest(
            make_record(
                name,
                "text",
                {"table": {"chars": len(table),
                           "lines": table.count("\n") + 1,
                           "text": table}},
                kind="table",
                suite="tables",
                batch=_store_batch,
            )
        )


def pytest_sessionfinish(session, exitstatus):
    if not _tables and _gate_report is None:
        return
    tw = getattr(session.config, "get_terminal_writer", lambda: None)()
    emit = tw.line if tw is not None else print
    if _tables:
        emit("")
        emit("=" * 78)
        emit("Reproduced evaluation figures (also in benchmarks/results/)")
        emit("=" * 78)
        for name in sorted(_tables):
            emit("")
            for line in _tables[name].splitlines():
                emit(line)
    if _gate_report is not None:
        emit("")
        for line in _gate_report.format().splitlines():
            emit(line)


@pytest.fixture(scope="session")
def all_results():
    """The ten benchmark measurements, shared by every figure.  Also
    dumps the raw data as JSON for downstream plotting, plus per-mode
    run metrics (and full event traces when ``REPRO_BENCH_TRACE`` is
    set)."""
    import json

    from repro.obs import build_metrics
    from repro.workloads import figures_as_dict, run_all_benchmarks

    trace_dir = None
    if os.environ.get("REPRO_BENCH_TRACE"):
        trace_dir = str(RESULTS_DIR / "traces")

    results = run_all_benchmarks(
        trace_dir=trace_dir, profile_sites=bench_store() is not None
    )
    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / "figures.json").write_text(
        json.dumps(figures_as_dict(results), indent=2) + "\n"
    )
    metrics = {
        name: {
            mode.label: build_metrics(mode.compile_output, mode.machine)
            for mode in (result.baseline, result.speculative)
        }
        for name, result in results.items()
    }
    (RESULTS_DIR / "metrics.json").write_text(
        json.dumps(metrics, indent=2) + "\n"
    )

    history = os.environ.get("REPRO_BENCH_HISTORY")
    if history:
        from repro.workloads import gate_results

        history_dir = str(HISTORY_DIR) if history == "1" else history
        global _gate_report
        _gate_report = gate_results(results, history_dir)

    store = bench_store()
    if store is not None:
        from repro.workloads.runner import store_records

        store.ingest_many(
            store_records(results, suite="matrix", batch=_store_batch)
        )

    return results
