"""Figure 11 — RSE memory cycles increase.

Paper: register promotion enlarges register frames, so the Register
Stack Engine moves more registers; ammp (+55.4%) and gzip (+10.6%) show
the largest relative increases, but absolute RSE time is a negligible
share of execution (~0.001%), so the extra register pressure is free.
Our coarser RSE model reproduces the same verdict with slightly larger
(still sub-0.1%) shares.
"""

from __future__ import annotations

import pytest

from repro.workloads import figure11_table

from conftest import publish_table


def test_fig11_table(benchmark, all_results):
    table = benchmark.pedantic(
        lambda: figure11_table(all_results), rounds=1, iterations=1
    )
    publish_table("figure11_rse", table)


def test_fig11_ammp_and_gzip_increase(all_results):
    for name in ("ammp", "gzip"):
        r = all_results[name]
        assert (
            r.speculative.counters.rse_cycles
            >= r.baseline.counters.rse_cycles
        ), f"{name}: RSE traffic must not shrink under promotion"
    # ammp is the standout, as in the paper
    ammp = all_results["ammp"]
    assert ammp.speculative.counters.rse_cycles > ammp.baseline.counters.rse_cycles


def test_fig11_share_negligible(all_results):
    for name, r in all_results.items():
        assert r.rse_share_of_cycles_pct < 0.5, (
            f"{name}: RSE share {r.rse_share_of_cycles_pct:.3f}% — must be "
            "negligible as the paper observes"
        )


def test_fig11_most_benchmarks_unchanged(all_results):
    unchanged = sum(
        1
        for r in all_results.values()
        if r.speculative.counters.rse_cycles == r.baseline.counters.rse_cycles
    )
    assert unchanged >= 6  # "RSE cycles reported are barely changed"
