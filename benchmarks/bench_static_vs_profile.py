"""Static vs profile-guided speculation (probabilistic alias analysis).

DESIGN.md §15: the static estimator prices every (candidate, store)
pair from points-to overlap, loop structure and call summaries — no
training run.  This bench runs the full comparison over the workload
matrix: gate-decision agreement against profiled gating on one shared
compilation, Brier score of the static estimates against the profiled
0/1 ground truth, and the end-to-end cost of the static-only
configuration (heuristic speculation + static gating) relative to the
profile-guided one.  Expectation: agreement at or above the 0.80
acceptance bar everywhere, identical outputs, and static-only cycles
within a few percent of profiled.
"""

from __future__ import annotations

import pytest

from repro.analysis.probalias import (
    AGREEMENT_THRESHOLD,
    comparison_table,
    compare_workload,
)
from repro.workloads.programs import BENCHMARKS

from conftest import bench_store, publish_table


@pytest.fixture(scope="module")
def rows():
    out = {name: compare_workload(name) for name in BENCHMARKS}
    store = bench_store()
    if store is not None:
        from repro.obs.store import make_record

        for r in out.values():
            store.ingest(
                make_record(
                    r.workload,
                    "static-alias",
                    r.as_metrics(),
                    kind="static-alias",
                    suite="static-alias",
                )
            )
    return out


@pytest.mark.parametrize("name", list(BENCHMARKS))
def test_static_agrees_and_matches_output(rows, name):
    row = rows[name]
    assert row.output_match, f"{name}: static-only output diverged"
    assert row.agreement >= AGREEMENT_THRESHOLD, (
        f"{name}: gate agreement {row.agreement:.2f} "
        f"({row.agreements}/{row.candidates})"
    )
    assert row.brier <= 0.25, f"{name}: Brier {row.brier:.3f}"


def test_static_cycles_close_to_profiled(rows):
    """No profile costs something (the estimator cannot see which
    aliasing is real at run time — mcf's pointer chains pay ~5%) but
    must stay in the same league per workload and across the matrix."""
    worse = []
    for name, row in rows.items():
        slowdown = (
            100.0
            * (row.cycles_static - row.cycles_profile)
            / row.cycles_profile
        )
        if slowdown > 8.0:
            worse.append(f"{name}: static {slowdown:+.2f}% cycles")
    assert not worse, worse
    total_s = sum(r.cycles_static for r in rows.values())
    total_p = sum(r.cycles_profile for r in rows.values())
    assert 100.0 * (total_s - total_p) / total_p <= 3.0


def test_static_vs_profile_table(benchmark, rows):
    records = [
        {"bench": r.workload, "metrics": r.as_metrics()}
        for r in rows.values()
    ]
    table = benchmark.pedantic(
        lambda: comparison_table(records), rounds=1, iterations=1
    )
    publish_table("static_vs_profile", table)
