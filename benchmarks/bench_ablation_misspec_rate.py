"""Ablation C — gain as a function of the true aliasing rate.

Section 4 warns: "A high mis-speculation ratio can decrease the benefit
of speculative optimization or even degrade performance ... for the
chk.a, there is a relatively large penalty to jump to and back from the
recovery code" (section 2.5).  ld.c failures only cost the reload, so
plain value speculation can hardly lose; the degradation risk lives in
**cascaded** promotion, where a failed chk.a pays the recovery trap.
This bench drives a pointer-chain kernel (rounds=2, chk.a checks) whose
*address* really changes on a controllable fraction of iterations,
trained on an input where it never does.
"""

from __future__ import annotations

import pytest

from repro.pipeline import CompilerOptions, OptLevel, SpecMode, compile_source, run_program

from conftest import publish_table, record_counters

#: ``main(n)``: the pointer p (promoted, checked with chk.a after
#: cascade promotion) is really redirected when i % RATE == 0 beyond
#: the training region (train n=40 < 50).
TEMPLATE = """
int a; int b; int c;
int *p;
int *other;
int **q;
int **w;
int out;

int main(int n) {
    q = &p;
    p = &a;
    other = &c;
    a = 3;
    b = 9;
    int i = 0;
    while (i < n) {
        if (i > 50 && i %% %(rate)d == 0) {
            w = &p;                  // really redirects the pointer
        } else {
            w = &other;
        }
        out = out + *(*q);
        *w = &b;                     // address-ambiguous pointer store
        out = out + *(*q) %% 13;
        i = i + 1;
    }
    print(out);
    print(*p);
    return out %% 251;
}
"""

RATES = (1000, 50, 10, 4, 2, 1)
TRAIN = [40]
REF = [2000]


def _measure(rate: int):
    source = TEMPLATE % {"rate": rate}
    ref = run_program(source, REF)
    rows = {}
    for mode in (SpecMode.NONE, SpecMode.PROFILE):
        out = compile_source(
            source,
            CompilerOptions(opt_level=OptLevel.O3, spec_mode=mode, rounds=2),
            train_args=TRAIN,
        )
        res = out.run(REF)
        assert res.output == ref.output, f"rate={rate} mode={mode}: diverged"
        record_counters(
            "ablation:misspec_rate", "misspec_kernel", mode.value,
            res.counters, config={"alias_every": rate, "rounds": 2},
        )
        rows[mode] = res.counters
    base, spec = rows[SpecMode.NONE], rows[SpecMode.PROFILE]
    gain = 100.0 * (base.cpu_cycles - spec.cpu_cycles) / base.cpu_cycles
    return gain, 100.0 * spec.misspeculation_ratio


@pytest.fixture(scope="module")
def sweep():
    return {rate: _measure(rate) for rate in RATES}


def test_misspec_rate_table(benchmark, sweep):
    def render():
        lines = [
            "Ablation C. Gain vs true aliasing rate (adversarial kernel)",
            "-" * 64,
            f"{'alias every':>12}{'mis-spec ratio %':>18}{'cycle gain %':>14}",
            "-" * 64,
        ]
        for rate in RATES:
            gain, ratio = sweep[rate]
            lines.append(f"{rate:>12}{ratio:>18.1f}{gain:>14.2f}")
        lines.append("-" * 64)
        return "\n".join(lines)

    table = benchmark.pedantic(render, rounds=1, iterations=1)
    publish_table("ablation_misspec_rate", table)


def test_gain_decays_with_aliasing(sweep):
    rare_gain = sweep[1000][0]
    constant_gain = sweep[1][0]
    assert rare_gain > constant_gain, (
        "gains must shrink as true aliasing grows"
    )


def test_ratio_monotone(sweep):
    assert sweep[1000][1] <= sweep[10][1] <= sweep[1][1] + 1e-9


def test_rare_aliasing_still_wins(sweep):
    assert sweep[1000][0] > 0


def test_constant_aliasing_degrades(sweep):
    """With the address changing every iteration, recovery traps should
    erode most (or all) of the speculative advantage."""
    assert sweep[1][0] < sweep[1000][0] * 0.7


def test_correctness_under_constant_aliasing(sweep):
    # the rate=1 entry only exists if its differential check passed
    assert 1 in sweep
