"""Figure 9 — direct vs indirect loads among the eliminated loads.

Paper: indirect loads account for the majority of reduced loads in
ammp, gzip, mcf and parser — the benchmarks whose hot paths chase
pointers — because only the ALAT scheme can speculatively promote
indirect references (section 5 contrasts this with SLAT, and the -O3
software scheme is scalar-only).
"""

from __future__ import annotations

import pytest

from repro.workloads import figure9_table

from conftest import publish_table

#: Benchmarks the paper singles out as indirect-dominated.
INDIRECT_HEAVY = ("ammp", "gzip", "mcf")


def test_fig9_table(benchmark, all_results):
    table = benchmark.pedantic(
        lambda: figure9_table(all_results), rounds=1, iterations=1
    )
    publish_table("figure9_load_types", table)


def test_fig9_indirect_majority(all_results):
    for name in INDIRECT_HEAVY:
        kinds = all_results[name].reduced_loads_by_kind
        total = kinds["direct"] + kinds["indirect"]
        assert total > 0, f"{name}: no loads eliminated at all"
        share = kinds["indirect"] / total
        assert share >= 0.5, (
            f"{name}: indirect share {share:.0%} — the paper reports an "
            "indirect majority here"
        )


def test_fig9_parser_substantial_indirect(all_results):
    kinds = all_results["parser"].reduced_loads_by_kind
    total = kinds["direct"] + kinds["indirect"]
    assert total > 0
    assert kinds["indirect"] / total >= 0.4


def test_fig9_scalar_benchmarks_direct(all_results):
    # vpr/vortex/bzip2/twolf reduce mostly named scalars
    for name in ("vpr", "vortex", "bzip2", "twolf"):
        kinds = all_results[name].reduced_loads_by_kind
        total = kinds["direct"] + kinds["indirect"]
        assert total > 0
        assert kinds["direct"] / total >= 0.5
