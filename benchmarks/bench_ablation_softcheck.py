"""Ablation B — ALAT checks vs software checks for the same
speculation decisions.

``SpecMode.SOFTWARE`` runs the *profile-guided* speculation through
Nicolau-style compare-and-reload instead of the ALAT.  The paper's
section 5 argument: "The major advantage of using ALAT is that the
comparison of addresses is done implicitly by hardware" — so the ALAT
build should retire fewer instructions than the software build at the
same promotion decisions.
"""

from __future__ import annotations

import pytest

from repro.pipeline import CompilerOptions, OptLevel, SpecMode, compile_source
from repro.workloads.programs import BENCHMARKS, get_workload
from repro.ir.interp import run_module
from repro.minic import compile_to_ir

from conftest import publish_table, record_counters

WORKLOADS = ("gzip", "vpr", "parser", "vortex", "art")


def _measure(name: str, mode: SpecMode):
    w = get_workload(name)
    out = compile_source(
        w.source,
        CompilerOptions(opt_level=OptLevel.O3, spec_mode=mode),
        train_args=list(w.train_args),
        name=w.name,
    )
    return out.run(list(w.ref_args))


@pytest.fixture(scope="module")
def pairs():
    rows = {}
    for name in WORKLOADS:
        ref = run_module(
            compile_to_ir(get_workload(name).source),
            list(get_workload(name).ref_args),
        )
        alat = _measure(name, SpecMode.PROFILE)
        soft = _measure(name, SpecMode.SOFTWARE)
        assert alat.output == ref.output, f"{name}: ALAT build diverged"
        assert soft.output == ref.output, f"{name}: software build diverged"
        record_counters(
            "ablation:softcheck", name, SpecMode.PROFILE.value,
            alat.counters, config={"checks": "alat"},
        )
        record_counters(
            "ablation:softcheck", name, SpecMode.SOFTWARE.value,
            soft.counters, config={"checks": "software"},
        )
        rows[name] = (alat.counters, soft.counters)
    return rows


def test_softcheck_table(benchmark, pairs):
    def render():
        lines = [
            "Ablation B. ALAT vs software checks (same profile-guided decisions)",
            "-" * 78,
            f"{'benchmark':<10}{'ALAT cycles':>13}{'soft cycles':>13}"
            f"{'ALAT instr':>12}{'soft instr':>12}{'ALAT adv %':>11}",
            "-" * 78,
        ]
        for name, (alat, soft) in pairs.items():
            adv = (
                100.0 * (soft.cpu_cycles - alat.cpu_cycles) / soft.cpu_cycles
                if soft.cpu_cycles
                else 0.0
            )
            lines.append(
                f"{name:<10}{alat.cpu_cycles:>13}{soft.cpu_cycles:>13}"
                f"{alat.instructions:>12}{soft.instructions:>12}{adv:>10.2f}%"
            )
        lines.append("-" * 78)
        return "\n".join(lines)

    table = benchmark.pedantic(render, rounds=1, iterations=1)
    publish_table("ablation_softcheck", table)


def test_alat_not_slower_overall(pairs):
    alat_total = sum(a.cpu_cycles for a, _ in pairs.values())
    soft_total = sum(s.cpu_cycles for _, s in pairs.values())
    assert alat_total <= soft_total * 1.01


def test_software_mode_uses_no_checks(pairs):
    for name, (_alat, soft) in pairs.items():
        # Software builds may retain ld.sa control speculation but
        # perform their data-speculation repairs with compares, not
        # ALAT check instructions.
        assert soft.check_failures == 0
