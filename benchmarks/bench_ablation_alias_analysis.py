"""Ablation E — pointer-analysis precision vs speculation opportunity.

ORC's baseline runs a *sequence* of pointer analyses (section 4).  This
ablation swaps the solver under both configurations:

* a **less precise** static analysis (Steensgaard's unification) makes
  more loads look aliased, which the *baseline* cannot promote — so the
  speculative treatment has more to win;
* a **more precise** analysis (Andersen) closes part of that gap
  statically.

The paper's framing ("one alternative to a more precise alias analysis
is to have hardware support") predicts the speculative gain should not
*increase* when the static analysis gets better.
"""

from __future__ import annotations

import pytest

from repro.alias.manager import AliasAnalysisKind
from repro.pipeline import CompilerOptions, OptLevel, SpecMode, compile_source
from repro.ir.interp import run_module
from repro.minic import compile_to_ir
from repro.workloads.programs import get_workload

from conftest import publish_table, record_counters

WORKLOADS = ("gzip", "vpr", "parser", "vortex", "twolf")


def _gain(name: str, kind: AliasAnalysisKind) -> float:
    w = get_workload(name)
    ref = run_module(compile_to_ir(w.source), list(w.ref_args))
    cycles = {}
    for mode in (SpecMode.NONE, SpecMode.PROFILE):
        out = compile_source(
            w.source,
            CompilerOptions(
                opt_level=OptLevel.O3, spec_mode=mode, alias_analysis=kind
            ),
            train_args=list(w.train_args),
            name=w.name,
        )
        res = out.run(list(w.ref_args))
        assert res.output == ref.output, f"{name}/{kind.value}/{mode}: diverged"
        record_counters(
            "ablation:alias_analysis", name, mode.value, res.counters,
            config={"alias_analysis": kind.value},
        )
        cycles[mode] = res.counters.cpu_cycles
    return 100.0 * (cycles[SpecMode.NONE] - cycles[SpecMode.PROFILE]) / cycles[
        SpecMode.NONE
    ]


@pytest.fixture(scope="module")
def gains():
    return {
        name: {
            kind: _gain(name, kind)
            for kind in (AliasAnalysisKind.ANDERSEN, AliasAnalysisKind.STEENSGAARD)
        }
        for name in WORKLOADS
    }


def test_alias_analysis_table(benchmark, gains):
    def render():
        lines = [
            "Ablation E. Speculative gain under different pointer analyses (cycle %)",
            "-" * 64,
            f"{'benchmark':<10}{'andersen %':>13}{'steensgaard %':>15}",
            "-" * 64,
        ]
        for name, row in gains.items():
            lines.append(
                f"{name:<10}{row[AliasAnalysisKind.ANDERSEN]:>13.2f}"
                f"{row[AliasAnalysisKind.STEENSGAARD]:>15.2f}"
            )
        lines.append("-" * 64)
        return "\n".join(lines)

    table = benchmark.pedantic(render, rounds=1, iterations=1)
    publish_table("ablation_alias_analysis", table)


def test_correct_under_both_solvers(gains):
    # the fixture already differentially validated every run
    assert set(gains) == set(WORKLOADS)


def test_speculation_not_hurt_by_coarser_analysis(gains):
    """Coarser static analysis should not reduce the total speculative
    advantage (hardware absorbs the imprecision)."""
    total_and = sum(r[AliasAnalysisKind.ANDERSEN] for r in gains.values())
    total_ste = sum(r[AliasAnalysisKind.STEENSGAARD] for r in gains.values())
    assert total_ste >= total_and - 1.5
