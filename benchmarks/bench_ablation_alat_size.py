"""Ablation A — ALAT capacity sweep.

The ALAT is small (32 entries, 2-way on Itanium).  Entries evicted for
capacity make later checks fail spuriously, turning free ld.c's back
into loads.  Sweeping the entry count shows the check-failure knee and
confirms 32 entries suffice for these workloads (the paper's section 5
notes the ALAT "requires fewer entries than the register file").
"""

from __future__ import annotations

import pytest

from repro.machine.alat import ALATConfig
from repro.machine.cpu import MachineConfig
from repro.workloads import run_benchmark
from repro.workloads.programs import BENCHMARKS

from conftest import publish_table, record_benchmark

SIZES = (2, 4, 8, 16, 32, 64)
#: check-heavy workloads where capacity pressure is visible
WORKLOADS = ("ammp", "equake", "mcf")


def _run_with_alat_entries(name: str, entries: int):
    config = MachineConfig(alat=ALATConfig(entries=entries, associativity=2))
    return run_benchmark(name, machine_config=config, use_cache=False)


@pytest.fixture(scope="module")
def sweep():
    rows = {}
    for name in WORKLOADS:
        rows[name] = {}
        for entries in SIZES:
            r = _run_with_alat_entries(name, entries)
            record_benchmark(
                r, suite="ablation:alat_size",
                config={"alat_entries": entries},
            )
            c = r.speculative.counters
            rows[name][entries] = (
                c.check_failures,
                r.cycle_reduction_pct,
                r.speculative.machine.alat_stats.capacity_evictions,
            )
    return rows


def test_alat_size_table(benchmark, sweep):
    def render():
        lines = [
            "Ablation A. ALAT capacity sweep (check failures / cycle gain % / evictions)",
            "-" * 78,
            f"{'benchmark':<10}" + "".join(f"{s:>11}" for s in SIZES),
            "-" * 78,
        ]
        for name, row in sweep.items():
            cells = "".join(
                f"{row[s][0]:>5}/{row[s][1]:>4.1f}%" for s in SIZES
            )
            lines.append(f"{name:<10}{cells}")
        lines.append("-" * 78)
        return "\n".join(lines)

    table = benchmark.pedantic(render, rounds=1, iterations=1)
    publish_table("ablation_alat_size", table)


def test_small_alat_fails_more_checks(sweep):
    for name, row in sweep.items():
        tiny_failures = row[SIZES[0]][0]
        full_failures = row[32][0]
        assert tiny_failures >= full_failures, (
            f"{name}: shrinking the ALAT must not reduce failures"
        )


def test_itanium_size_is_sufficient(sweep):
    """32 entries behave like 64 on these working sets."""
    for name, row in sweep.items():
        assert row[32][0] <= row[64][0] + max(5, row[64][0] // 5)


def test_capacity_evictions_monotone(sweep):
    for name, row in sweep.items():
        assert row[2][2] >= row[64][2]
