"""Alias analyses: constraint generation, both solvers, the type
filter, alias classes and interprocedural mod/ref."""

import pytest

from repro.alias import (
    AliasAnalysisKind,
    AliasManager,
    build_constraints,
    object_access_types,
    solve_andersen,
    solve_steensgaard,
)
from repro.ir.expr import Load, VarRead
from repro.ir.stmt import Store
from repro.minic import compile_to_ir


def manager(src, kind=AliasAnalysisKind.ANDERSEN, type_filter=True):
    module = compile_to_ir(src)
    return module, AliasManager(module, kind, type_filter)


def store_targets(module, am, fn_name="main"):
    """{str(store): sorted target names} for every indirect store."""
    out = {}
    for stmt in module.function(fn_name).iter_stmts():
        if isinstance(stmt, Store):
            targets = am.access_targets(stmt.addr, stmt.value.type)
            out[str(stmt)] = sorted(str(t) for t in targets)
    return out


BOTH = [AliasAnalysisKind.ANDERSEN, AliasAnalysisKind.STEENSGAARD]


@pytest.mark.parametrize("kind", BOTH)
def test_two_target_store(kind):
    src = """
    int a; int b; int c;
    int main(int n) {
        int *p;
        if (n) { p = &a; } else { p = &b; }
        *p = 1;
        return c;
    }
    """
    module, am = manager(src, kind)
    (targets,) = store_targets(module, am).values()
    assert targets == ["a", "b"]


def test_andersen_distinguishes_separate_pointers():
    src = """
    int a; int b;
    int main() {
        int *p = &a;
        int *q = &b;
        *p = 1;
        *q = 2;
        return 0;
    }
    """
    module, am = manager(src, AliasAnalysisKind.ANDERSEN)
    targets = store_targets(module, am)
    values = sorted(targets.values())
    assert values == [["a"], ["b"]]


def test_steensgaard_coarser_than_andersen():
    """The classic case: a flows into p, b into q, then q = p merges
    classes under unification but not under inclusion."""
    src = """
    int a; int b;
    int main(int n) {
        int *p = &a;
        int *q = &b;
        if (n) { q = p; }
        *p = 1;
        return 0;
    }
    """
    module_a, am_a = manager(src, AliasAnalysisKind.ANDERSEN)
    (and_targets,) = store_targets(module_a, am_a).values()
    module_s, am_s = manager(src, AliasAnalysisKind.STEENSGAARD)
    (ste_targets,) = store_targets(module_s, am_s).values()
    assert and_targets == ["a"]
    assert set(and_targets) <= set(ste_targets)
    assert ste_targets == ["a", "b"]


@pytest.mark.parametrize("kind", BOTH)
def test_heap_allocation_sites(kind):
    src = """
    struct n { int v; struct n *next; };
    int g;
    int main(int k) {
        struct n *x = alloc(struct n, 1);
        struct n *y = alloc(struct n, 1);
        x->v = 1;
        y->next = x;
        g = x->v;
        return 0;
    }
    """
    module, am = manager(src, kind)
    targets = store_targets(module, am)
    for tgt in targets.values():
        assert all(t.startswith("heap@") for t in tgt)
        assert "g" not in tgt


@pytest.mark.parametrize("kind", BOTH)
def test_interprocedural_flow(kind):
    src = """
    int a; int b;
    void write(int *p) { *p = 5; }
    int main() { write(&a); return b; }
    """
    module, am = manager(src, kind)
    targets = store_targets(module, am, "write")
    (tgt,) = targets.values()
    assert "a" in tgt
    assert "b" not in tgt


def test_return_value_flow():
    src = """
    int a;
    int *get() { return &a; }
    int main() { int *p = get(); *p = 1; return 0; }
    """
    module, am = manager(src)
    (tgt,) = store_targets(module, am).values()
    assert tgt == ["a"]


def test_type_filter_prunes_incompatible():
    src = """
    int a;
    float f;
    int main(int n) {
        float *q = &f;
        *q = 1.5;
        return a;
    }
    """
    module, am = manager(src, type_filter=True)
    (tgt,) = store_targets(module, am).values()
    assert tgt == ["f"]


def test_object_access_types_struct():
    src = """
    struct s { int x; float y; struct s *link; };
    struct s g;
    int main() { return 0; }
    """
    module, am = manager(src)
    obj = am.object_of_var(module.find_global("g"))
    types = object_access_types(obj)
    assert "int" in types and "float" in types and "struct s*" in types


def test_indirect_store_through_struct_field():
    src = """
    struct n { int v; struct n *next; };
    int main() {
        struct n *a = alloc(struct n, 1);
        struct n *b = alloc(struct n, 1);
        a->next = b;
        a->next->v = 3;
        print(a->next->v);
        return 0;
    }
    """
    module, am = manager(src)
    targets = store_targets(module, am)
    # v-store goes through next: may be either allocation site
    v_store = [t for s, t in targets.items() if "= 3" in s][0]
    assert len(v_store) >= 1


def test_alias_classes_share_virtual_variable():
    src = """
    int a; int b;
    int main(int n) {
        int *p;
        if (n) { p = &a; } else { p = &b; }
        *p = 1;
        print(*p);
        return 0;
    }
    """
    module, am = manager(src)
    fn = module.main
    store = next(s for s in fn.iter_stmts() if isinstance(s, Store))
    load = next(
        e
        for s in fn.iter_stmts()
        for e in s.walk_exprs()
        if isinstance(e, Load)
    )
    vv_store = am.virtual_var_of_access(store.addr, store.value.type)
    vv_load = am.virtual_var_of_access(load.addr, load.type)
    assert vv_store is vv_load
    objs = {str(o) for o in am.class_objects(vv_store)}
    assert {"a", "b"} <= objs


def test_gmod_gref_transitive():
    src = """
    int g; int h;
    void deep() { g = 1; }
    void mid() { deep(); }
    int main() { mid(); return h; }
    """
    module, am = manager(src)
    g = module.find_global("g")
    g_obj = am.object_of_var(g)
    assert g_obj in am.call_mod("mid")
    assert g_obj in am.call_mod("deep")
    h_obj = am.object_of_var(module.find_global("h"))
    assert h_obj not in am.call_mod("mid")


def test_gmod_recursion_terminates():
    src = """
    int g;
    void f(int n) { if (n) { g = n; f(n - 1); } }
    int main() { f(3); return g; }
    """
    module, am = manager(src)
    assert am.object_of_var(module.find_global("g")) in am.call_mod("f")


def test_soundness_vs_profile_targets():
    """Dynamic targets must always be a subset of static points-to."""
    from repro.speculation.profile import collect_alias_profile, object_key

    src = """
    int a; int b; int c;
    int main(int n) {
        int *p;
        int i;
        for (i = 0; i < n; i += 1) {
            if (i % 3 == 0) { p = &a; }
            if (i % 3 == 1) { p = &b; }
            if (i % 3 == 2) { p = &c; }
            *p = i;
        }
        print(a + b + c);
        return 0;
    }
    """
    module = compile_to_ir(src)
    profile, _ = collect_alias_profile(module, [9])
    am = AliasManager(module)
    for stmt in module.main.iter_stmts():
        if isinstance(stmt, Store):
            static = {object_key(o) for o in am.access_targets(stmt.addr, stmt.value.type)}
            dynamic = profile.store_targets.get(stmt.sid, set())
            assert dynamic <= static, (str(stmt), dynamic, static)
