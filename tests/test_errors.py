"""Error hierarchy and diagnostic quality."""

import pytest

import repro
from repro.errors import (
    CodegenError,
    InterpError,
    LexError,
    MachineError,
    ParseError,
    ReproError,
    SemanticError,
    SourceError,
    VerificationError,
)
from repro.minic import compile_to_ir
from repro.pipeline import compile_and_run, run_program


def test_hierarchy():
    for exc in (
        LexError,
        ParseError,
        SemanticError,
        VerificationError,
        InterpError,
        CodegenError,
        MachineError,
    ):
        assert issubclass(exc, ReproError)
    assert issubclass(LexError, SourceError)
    assert issubclass(ParseError, SourceError)
    assert issubclass(SemanticError, SourceError)


def test_source_errors_carry_positions():
    with pytest.raises(ParseError) as exc:
        compile_to_ir("int main() {\n  return 1 2;\n}")
    assert exc.value.line == 2
    assert "2:" in str(exc.value)
    with pytest.raises(LexError) as lex_exc:
        compile_to_ir("int main() {\n  return @;\n}")
    assert lex_exc.value.line == 2


def test_one_catch_all_for_users():
    """A downstream user can wrap everything in `except ReproError`."""
    bad_inputs = [
        "int main( { }",                          # parse
        "int main() { return x; }",               # sema
        "int main() { int *p = 0; return *p; }",  # runtime (interp)
    ]
    for source in bad_inputs:
        with pytest.raises(ReproError):
            run_program(source, [])


def test_machine_fault_is_repro_error():
    with pytest.raises(ReproError):
        compile_and_run("int main() { int *p = 0; *p = 1; return 0; }")


def test_interp_error_message_names_the_problem():
    with pytest.raises(InterpError) as exc:
        run_program("int main() { return 1 / 0; }", [])
    assert "zero" in str(exc.value)


def test_wrong_arity_arguments():
    with pytest.raises(InterpError):
        run_program("int main(int a, int b) { return a + b; }", [1])


def test_public_error_export():
    assert repro.ReproError is ReproError
