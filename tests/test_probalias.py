"""Probabilistic alias analysis (`repro.analysis.probalias`).

The load-bearing properties: the noisy-OR combiner and the estimator
are monotone (growing a points-to set never lowers an estimate),
hand-built fixtures produce exactly the documented probabilities
(named/heap weights, loop-carried and call attenuation, type
refutation, the unknown-address residual), `ProfileProbSource` keeps
the legacy pressure numbers byte-identical, `HybridProbSource`
backfills unprofiled stores with per-pair static estimates instead of
the flat residual, the `AliasManager` per-statement interface handles
the rewritten-address fallback, and static gating agrees with profiled
gating on the real workloads.
"""

from __future__ import annotations

import pytest
from hypothesis import given, strategies as st

from repro.analysis.alatpressure import (
    P_ALIAS_SEEN,
    P_ALIAS_UNSEEN,
    analyze_module_pressure,
)
from repro.analysis.probalias import (
    AGREEMENT_THRESHOLD,
    CALL_ATTENUATION,
    LOOP_CARRIED_ATTENUATION,
    P_UNKNOWN,
    W_HEAP,
    W_NAMED,
    HybridProbSource,
    ProbAliasEstimator,
    ProfileProbSource,
    StaticProbSource,
    combine_noisy_or,
    compare_workload,
    make_prob_source,
)
from repro.alias.manager import AliasManager
from repro.ir import INT, ModuleBuilder
from repro.ir.expr import Load
from repro.ir.stmt import Call, Store
from repro.ir.types import PointerType
from repro.pipeline import (
    CompilerOptions,
    OptLevel,
    PromotionGate,
    SpecMode,
    compile_source,
)
from repro.speclint import facts_from_pre_stats
from repro.workloads.programs import get_workload
from repro.workloads.runner import SPECULATIVE


# -- helpers -----------------------------------------------------------


def compile_mc(source: str, spec: str = "none", train=None):
    opts = CompilerOptions(
        opt_level=OptLevel.O3,
        spec_mode=SpecMode(spec),
        promotion_gate=PromotionGate.OFF,
    )
    return compile_source(source, opts, train_args=train, name="fixture")


def fresh_am(output) -> AliasManager:
    """An AliasManager over the *final* module.  The pipeline's own
    manager predates the later rewriting passes, so fixture stores can
    carry expressions it never registered; rebuilding keeps the
    hand-computed tests about the probability model, not eid staleness."""
    return AliasManager(output.module)


def stores_of(output) -> list[Store]:
    return [
        s
        for fn in output.module.iter_functions()
        for s in fn.iter_stmts()
        if isinstance(s, Store)
    ]


def global_oid(am: AliasManager, output, name: str) -> int:
    (g,) = [v for v in output.module.globals if v.name == name]
    obj = am.object_of_var(g)
    assert obj is not None
    return obj.id


#: a store through a two-target pointer, outside any loop
TWO_TARGET_SRC = """
int a; int b; int c;
int main(int n) {
    int *q;
    if (n > 100) { q = &a; } else { q = &b; }
    *q = n;
    print(a); print(b); print(c);
    return 0;
}
"""


# -- the noisy-OR combiner ---------------------------------------------


def test_noisy_or_hand_values():
    assert combine_noisy_or([]) == 0.0
    assert combine_noisy_or([0.35]) == pytest.approx(0.35)
    assert combine_noisy_or([0.35, 0.35]) == pytest.approx(1 - 0.65**2)
    assert combine_noisy_or([1.0, 0.1]) == pytest.approx(1.0)
    # out-of-range weights clamp instead of corrupting the product
    assert combine_noisy_or([2.0]) == pytest.approx(1.0)
    assert combine_noisy_or([-0.5]) == 0.0


@given(st.lists(st.floats(0, 1), max_size=8), st.floats(0, 1))
def test_noisy_or_monotone_in_weights(weights, extra):
    """Adding an overlap object never lowers the estimate."""
    base = combine_noisy_or(weights)
    assert 0.0 <= base <= 1.0
    assert combine_noisy_or(weights + [extra]) >= base - 1e-12


@given(st.lists(st.floats(0, 1), max_size=8))
def test_noisy_or_order_independent(weights):
    assert combine_noisy_or(weights) == pytest.approx(
        combine_noisy_or(list(reversed(weights)))
    )


# -- hand-computed fixture estimates -----------------------------------


def test_disjoint_targets_probability_zero():
    out = compile_mc(TWO_TARGET_SRC)
    am = fresh_am(out)
    est = ProbAliasEstimator(out.module, am)
    (store,) = stores_of(out)
    e = est.estimate_store(None, store, frozenset({global_oid(am, out, "c")}))
    assert e.prob == 0.0
    assert e.features["overlap"] == 0
    assert e.features["type_refuted"] is False


def test_named_overlap_is_per_object_weight():
    out = compile_mc(TWO_TARGET_SRC)
    am = fresh_am(out)
    est = ProbAliasEstimator(out.module, am)
    (store,) = stores_of(out)
    a, b = global_oid(am, out, "a"), global_oid(am, out, "b")
    one = est.estimate_store(None, store, frozenset({a}))
    assert one.prob == pytest.approx(W_NAMED)
    assert one.features["loop_carried"] is False
    assert one.features["overlap"] == 1
    both = est.estimate_store(None, store, frozenset({a, b}))
    assert both.prob == pytest.approx(combine_noisy_or([W_NAMED, W_NAMED]))


def test_estimator_monotone_in_candidate_targets():
    """Growing the candidate's home set never lowers the estimate."""
    out = compile_mc(TWO_TARGET_SRC)
    am = fresh_am(out)
    est = ProbAliasEstimator(out.module, am)
    (store,) = stores_of(out)
    a, b, c = (global_oid(am, out, n) for n in "abc")
    grown = [
        est.estimate_store(None, store, frozenset(s)).prob
        for s in ({c}, {a}, {a, c}, {a, b}, {a, b, c})
    ]
    assert grown == sorted(grown)


def test_heap_overlap_uses_heap_weight():
    out = compile_mc(
        """
        int main(int n) {
            int *q;
            q = alloc(int, 4);
            *q = n;
            print(*q);
            return 0;
        }
        """
    )
    am = fresh_am(out)
    est = ProbAliasEstimator(out.module, am)
    (store,) = stores_of(out)
    writes = am.store_write_ids(store)
    assert len(writes) == 1  # the allocation-site object
    e = est.estimate_store(None, store, writes)
    assert e.prob == pytest.approx(W_HEAP)
    assert e.features["heap_overlap"] == 1


def test_loop_carried_address_attenuates():
    """An address recomputed inside the store's loop halves the
    per-object weight; the same pointer stored outside stays full."""
    out = compile_mc(
        """
        int a; int b;
        int main(int n) {
            int *q;
            q = &a;
            int i = 0;
            while (i < n) {
                if (i > 2) { q = &a; } else { q = &b; }
                *q = i;
                i = i + 1;
            }
            q = &b;
            *q = 0;
            print(a); print(b);
            return 0;
        }
        """
    )
    am = fresh_am(out)
    est = ProbAliasEstimator(out.module, am)
    stores = stores_of(out)
    assert len(stores) == 2
    targets = frozenset({global_oid(am, out, "a")})
    ests = [est.estimate_store(None, s, targets) for s in stores]
    # block iteration order need not follow source order; the carried
    # flag itself identifies the in-loop store
    carried = {e.features["loop_carried"] for e in ests}
    assert carried == {True, False}
    e_in = next(e for e in ests if e.features["loop_carried"])
    e_out = next(e for e in ests if not e.features["loop_carried"])
    assert e_in.prob == pytest.approx(W_NAMED * LOOP_CARRIED_ATTENUATION)
    assert e_out.prob == pytest.approx(W_NAMED)
    assert e_in.prob < e_out.prob


def test_loop_invariant_address_not_attenuated():
    out = compile_mc(
        """
        int a; int b;
        int main(int n) {
            int *q;
            if (n > 100) { q = &a; } else { q = &b; }
            int i = 0;
            while (i < n) {
                *q = i;
                i = i + 1;
            }
            print(a); print(b);
            return 0;
        }
        """
    )
    am = fresh_am(out)
    est = ProbAliasEstimator(out.module, am)
    (store,) = stores_of(out)
    e = est.estimate_store(None, store, frozenset({global_oid(am, out, "a")}))
    assert e.features["loop_carried"] is False
    assert e.prob == pytest.approx(W_NAMED)


def test_call_overlap_attenuated():
    out = compile_mc(
        """
        int g; int h;
        int writeg(int v) { g = v; return 0; }
        int main(int n) {
            int r = writeg(n);
            print(g); print(h);
            return r;
        }
        """
    )
    am = fresh_am(out)
    est = ProbAliasEstimator(out.module, am)
    main_fn = output_fn(out, "main")
    (call,) = [
        s
        for s in main_fn.iter_stmts()
        if isinstance(s, Call) and s.callee == "writeg"
    ]
    hit = est.estimate_call(
        main_fn, call, frozenset({global_oid(am, out, "g")})
    )
    assert hit.prob == pytest.approx(W_NAMED * CALL_ATTENUATION)
    assert hit.features["callee"] == "writeg"
    miss = est.estimate_call(
        main_fn, call, frozenset({global_oid(am, out, "h")})
    )
    assert miss.prob == 0.0


def output_fn(output, name):
    return next(
        fn for fn in output.module.iter_functions() if fn.name == name
    )


# -- unknown addresses & the AliasManager fallback ---------------------


def manager_fixture_module():
    """One module exercising every per-statement manager query: a store
    through a pointer temp the points-to solution never saw (as
    promotion leaves behind), a resolved store through ``p -> {a}``,
    and loads of both globals."""
    mb = ModuleBuilder("m")
    a = mb.global_var("a", INT, init=1)
    b = mb.global_var("b", INT, init=2)
    fb = mb.function("main", [], INT)
    p = fb.temp(PointerType(INT), "p")
    fb.assign(p, fb.addr(a))
    t = fb.temp(PointerType(INT), "t")  # never assigned: unknown
    unknown_store = fb.store(fb.read(t), 7)
    known_store = fb.store(fb.read(p), 3)
    load_a = fb.load(fb.addr(a))
    load_b = fb.load(fb.addr(b))
    fb.ret(fb.add(load_a, load_b))
    fb.finish()
    mb.finish()
    return mb.module, a, b, p, t, unknown_store, known_store, load_a, load_b


def test_unknown_store_gets_residual_probability():
    module, a, *_rest = manager_fixture_module()
    _b, _p, _t, unknown_store, _known, _la, _lb = _rest
    am = AliasManager(module)
    est = ProbAliasEstimator(module, am)
    e = est.estimate_store(
        None, unknown_store, frozenset({am.object_of_var(a).id})
    )
    assert e.prob == pytest.approx(P_UNKNOWN)
    assert e.features["unknown"] is True


def test_store_write_ids_fallback_through_var_by_temp():
    module, a, _b, p, t, unknown_store, _known, _la, _lb = (
        manager_fixture_module()
    )
    am = AliasManager(module)
    assert am.store_write_ids(unknown_store) == frozenset()
    mapped = am.store_write_ids(unknown_store, var_by_temp={t.id: p.id})
    assert mapped == frozenset({am.object_of_var(a).id})


def test_may_alias_load_store_queries():
    module, _a, _b, _p, _t, unknown_store, known_store, load_a, load_b = (
        manager_fixture_module()
    )
    am = AliasManager(module)
    assert isinstance(load_b, Load)
    # unknown store targets conservatively alias everything
    assert am.may_alias_load_store(load_b, unknown_store) is True
    # resolved store: overlap decides
    assert am.may_alias_load_store(load_a, known_store) is True
    assert am.may_alias_load_store(load_b, known_store) is False


# -- ProbSource wiring --------------------------------------------------


def gzip_compiled():
    w = get_workload("gzip")
    opts = SPECULATIVE()
    opts.promotion_gate = PromotionGate.OFF
    return compile_source(
        w.source, opts, train_args=list(w.train_args), name="gzip"
    )


@pytest.fixture(scope="module")
def gzip_output():
    return gzip_compiled()


def pressure_kwargs(output):
    facts = facts_from_pre_stats(output.pre_stats, output.alias_manager)
    return dict(
        alat=output.options.machine.alat,
        am=output.alias_manager,
        targets_by_temp=facts.targets_by_temp,
    )


def test_profile_source_matches_legacy_pressure_numbers(gzip_output):
    """Threading the default probabilities through ProfileProbSource
    must not move a single p_alias (the refactor is behaviour-neutral)."""
    kwargs = pressure_kwargs(gzip_output)
    legacy = analyze_module_pressure(
        gzip_output.module, profile=gzip_output.profile, **kwargs
    )
    explicit = analyze_module_pressure(
        gzip_output.module,
        profile=gzip_output.profile,
        prob_source=ProfileProbSource(
            gzip_output.profile, gzip_output.alias_manager
        ),
        **kwargs,
    )
    assert legacy.functions.keys() == explicit.functions.keys()
    for fname, fp in legacy.functions.items():
        other = explicit.functions[fname]
        assert fp.candidates.keys() == other.candidates.keys()
        for t, rep in fp.candidates.items():
            assert rep.p_alias == other.candidates[t].p_alias
            assert rep.profit == other.candidates[t].profit
    assert legacy.demotion_plan() == explicit.demotion_plan()


def test_pair_estimates_recorded_with_provenance(gzip_output):
    kwargs = pressure_kwargs(gzip_output)
    mp = analyze_module_pressure(
        gzip_output.module,
        prob_source=StaticProbSource(
            ProbAliasEstimator(gzip_output.module, gzip_output.alias_manager)
        ),
        **kwargs,
    )
    pairs = [pe for fp in mp.functions.values() for pe in fp.pair_estimates]
    assert pairs
    for pe in pairs:
        assert pe.source == "static"
        assert pe.kind in ("store", "call")
        assert 0.0 <= pe.prob <= 1.0


def test_make_prob_source_kinds(gzip_output):
    module = gzip_output.module
    am = gzip_output.alias_manager
    profile = gzip_output.profile
    assert make_prob_source("profile", module, am, profile) is None
    assert isinstance(
        make_prob_source("static", module, am, profile), StaticProbSource
    )
    assert isinstance(
        make_prob_source("hybrid", module, am, profile), HybridProbSource
    )
    # hybrid degrades to static when there is no profile to prefer
    assert isinstance(
        make_prob_source("hybrid", module, am, None), StaticProbSource
    )
    with pytest.raises(ValueError):
        make_prob_source("psychic", module, am, profile)


def test_hybrid_backfills_unprofiled_store_with_static_estimate():
    """A store the training run never executed gets the per-pair static
    estimate, not the flat P_ALIAS_UNSEEN residual."""
    out = compile_mc(
        """
        int a; int b;
        int main(int n) {
            int *q;
            if (n > 100) { q = &a; } else { q = &b; }
            if (n > 100) { *q = 1; }
            int s = 0; int i = 0;
            while (i < n) { s = s + a; i = i + 1; }
            *q = s;
            print(s);
            return 0;
        }
        """,
        spec="profile",
        train=[10],
    )
    am = fresh_am(out)
    profile = out.profile
    hybrid = HybridProbSource(
        ProfileProbSource(profile, am),
        StaticProbSource(ProbAliasEstimator(out.module, am)),
    )
    cold = [s for s in stores_of(out) if s.sid not in profile.store_targets]
    hot = [s for s in stores_of(out) if s.sid in profile.store_targets]
    assert cold and hot
    targets = frozenset({global_oid(am, out, "a")})
    fn = output_fn(out, "main")
    est_cold = hybrid.store_prob(fn, cold[0], targets, False)
    assert est_cold.source == "static"
    assert est_cold.features["hybrid"] is True
    assert est_cold.prob == pytest.approx(W_NAMED)
    assert est_cold.prob != P_ALIAS_UNSEEN
    est_hot = hybrid.store_prob(fn, hot[0], targets, False)
    assert est_hot.source == "profile"
    assert est_hot.prob in (P_ALIAS_SEEN, P_ALIAS_UNSEEN)


# -- static vs profiled gating on the real workloads -------------------


@pytest.mark.parametrize("bench", ["gzip", "equake", "mcf"])
def test_static_gating_agrees_with_profiled(bench):
    row = compare_workload(bench)
    assert row.output_match, (
        f"{bench}: static-only output diverged from the reference"
    )
    assert row.agreement >= AGREEMENT_THRESHOLD
    assert 0.0 <= row.brier <= 0.25
    assert not row.problems()
