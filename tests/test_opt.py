"""Cleanup optimiser: constant folding, copy propagation, DCE."""

import pytest

from repro.ir.builder import ModuleBuilder
from repro.ir.expr import BinOp, BinOpKind, ConstFloat, ConstInt, UnOp, UnOpKind, VarRead
from repro.ir.interp import run_module, wrap_int
from repro.ir.stmt import Assign, CondBranch, Jump
from repro.ir.types import FLOAT, INT
from repro.minic import compile_to_ir
from repro.opt import cleanup_module
from repro.opt.constfold import fold_expr
from repro.opt.copyprop import propagate_copies_in_function
from repro.opt.dce import eliminate_dead_code_in_function
from repro.pipeline import CompilerOptions, OptLevel, SpecMode, compile_source, run_program

from tests.conftest import assert_all_modes_agree


# -- constant folding --------------------------------------------------------


def test_fold_arithmetic():
    e = BinOp(BinOpKind.ADD, ConstInt(2), BinOp(BinOpKind.MUL, ConstInt(3), ConstInt(4)))
    folded = fold_expr(e)
    assert isinstance(folded, ConstInt) and folded.value == 14


def test_fold_wraps_like_the_interpreter():
    big = 2**63 - 1
    e = BinOp(BinOpKind.ADD, ConstInt(big), ConstInt(1))
    folded = fold_expr(e)
    assert isinstance(folded, ConstInt)
    assert folded.value == wrap_int(big + 1) == -(2**63)


def test_fold_c_division():
    e = BinOp(BinOpKind.DIV, ConstInt(-7), ConstInt(2))
    assert fold_expr(e).value == -3


def test_division_by_zero_not_folded():
    e = BinOp(BinOpKind.DIV, ConstInt(1), ConstInt(0))
    assert isinstance(fold_expr(e), BinOp)  # fault preserved for runtime


def test_fold_comparisons_and_not():
    e = UnOp(UnOpKind.NOT, BinOp(BinOpKind.LT, ConstInt(1), ConstInt(2)))
    assert fold_expr(e).value == 0


def test_identities():
    mb = ModuleBuilder("m")
    fb = mb.function("main", [], INT)
    t = fb.temp(INT)
    x_plus_0 = BinOp(BinOpKind.ADD, VarRead(t), ConstInt(0))
    assert fold_expr(x_plus_0) is x_plus_0.left
    x_times_1 = BinOp(BinOpKind.MUL, VarRead(t), ConstInt(1))
    assert fold_expr(x_times_1) is x_times_1.left


def test_mul_by_zero_keeps_loads():
    """x*0 folds only when x performs no memory access (dead-load
    removal is DCE's job, with liveness; folding must not hide it)."""
    module = compile_to_ir("int g; int main() { return g * 0; }")
    from repro.opt.constfold import fold_constants_in_function

    fold_constants_in_function(module.main)
    from repro.ir.expr import VarRead as VR

    reads = [
        e
        for s in module.main.iter_stmts()
        for e in s.walk_exprs()
        if isinstance(e, VR) and e.var.name == "g"
    ]
    assert reads, "the load of g must survive folding"


def test_float_folding():
    e = BinOp(BinOpKind.MUL, ConstFloat(1.5), ConstFloat(2.0))
    folded = fold_expr(e)
    assert isinstance(folded, ConstFloat) and folded.value == 3.0


# -- copy propagation ---------------------------------------------------------


def test_copyprop_through_temp_chain():
    src = """
    int main(int n) {
        int a = n;
        int b = a;
        int c = b;
        return c + b;
    }
    """
    module = compile_to_ir(src)
    from repro.pre.scalarrepl import promote_module_scalars

    promote_module_scalars(module)
    changed = propagate_copies_in_function(module.main)
    assert changed > 0
    assert run_module(module, [21]).exit_value == 42


def test_copyprop_stops_at_redefinition():
    src = """
    int main(int n) {
        int a = n;
        int b = a;
        a = a + 1;
        return b;       // must still be the OLD a
    }
    """
    module = compile_to_ir(src)
    from repro.pre.scalarrepl import promote_module_scalars

    promote_module_scalars(module)
    propagate_copies_in_function(module.main)
    assert run_module(module, [5]).exit_value == 5


def test_copyprop_never_propagates_memory_reads():
    src = """
    int g;
    int *p;
    int main(int n) {
        p = &g;
        int a = g;     // load
        *p = n;        // may change g
        return a;      // must NOT become a reload of g
    }
    """
    module = compile_to_ir(src)
    propagate_copies_in_function(module.main)
    assert run_module(module, [9]).exit_value == 0  # a captured before store


# -- DCE ----------------------------------------------------------------------


def test_dce_removes_dead_temp_assign():
    mb = ModuleBuilder("m")
    fb = mb.function("main", [], INT)
    dead = fb.temp(INT, "dead")
    fb.emit(Assign(dead, ConstInt(42)))
    fb.ret(ConstInt(0))
    fn = fb.finish()
    removed = eliminate_dead_code_in_function(fn)
    assert removed == 1
    assert all("dead" not in str(s) for s in fn.iter_stmts())


def test_dce_folds_constant_branches():
    src = "int main() { if (1 < 2) { return 5; } return 9; }"
    module = compile_to_ir(src)
    from repro.opt.constfold import fold_constants_in_function

    fold_constants_in_function(module.main)
    eliminate_dead_code_in_function(module.main)
    assert not any(
        isinstance(s, CondBranch) for s in module.main.iter_stmts()
    )
    assert run_module(module, []).exit_value == 5


def test_dce_keeps_speculation_statements():
    src = """
    int a; int b;
    int *p;
    int main(int n) {
        if (n > 100) { p = &a; } else { p = &b; }
        a = 1;
        int s = 0;
        for (int i = 0; i < n; i += 1) { s += a; *p = s; s += a; }
        return s % 100;
    }
    """
    out = compile_source(
        src,
        CompilerOptions(opt_level=OptLevel.O3, spec_mode=SpecMode.PROFILE),
        train_args=[5],
    )
    from repro.ir.stmt import SpecFlag

    flags = [
        s.spec_flag
        for fn in out.module.iter_functions()
        for s in fn.iter_stmts()
        if isinstance(s, Assign) and s.spec_flag is not SpecFlag.NONE
    ]
    assert flags, "cleanup must not strip the speculation protocol"


def test_dce_never_removes_alloc():
    src = """
    int main() {
        int *dead = alloc(int, 4);
        int *live = alloc(int, 4);
        live[0] = 7;
        return live[0];
    }
    """
    module = compile_to_ir(src)
    cleanup_module(module)
    from repro.ir.stmt import Alloc

    allocs = [s for s in module.main.iter_stmts() if isinstance(s, Alloc)]
    assert len(allocs) == 2


# -- end-to-end ------------------------------------------------------------------


def test_cleanup_reduces_instructions():
    src = """
    int main(int n) {
        int a = 2 + 3;
        int b = a * 1;
        int c = b + 0;
        int unused = n * 99;
        print(c + n);
        return 0;
    }
    """
    on = compile_source(src, CompilerOptions(opt_level=OptLevel.O2, cleanup=True))
    off = compile_source(src, CompilerOptions(opt_level=OptLevel.O2, cleanup=False))
    r_on, r_off = on.run([4]), off.run([4])
    assert r_on.output == r_off.output == ["9"]
    assert r_on.counters.instructions < r_off.counters.instructions


def test_cleanup_preserves_semantics_across_modes():
    src = """
    int g; int h;
    int *p;
    int main(int n) {
        p = &g;
        int s = 1 * n + 0;
        for (int i = 0; i < n % 17; i += 1) {
            *p = s;
            s += g + h * 1;
        }
        print(s);
        return 0;
    }
    """
    assert_all_modes_agree(src, [23], train_args=[6])
