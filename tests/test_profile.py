"""Cycle-attribution profiling, run diffing, and the regression gate.

The attribution contract is exact: every slot the simulator's clock
advances is charged to exactly one static instruction, so the per-line
percentages tile ``cpu_cycles`` and the profiled per-function delta in
a diff matches the counter delta to within rounding.
"""

import io
import json

import pytest

from repro.ir.loc import Loc
from repro.obs import (
    JsonlSink,
    MemorySink,
    ProfileReport,
    TraceContext,
    diff_runs,
    format_diff,
    read_jsonl,
)
from repro.obs.regress import (
    EXIT_NO_HISTORY,
    Flag,
    compare_records,
    gate_metrics,
    gate_records,
    latest_record,
    load_history,
    main as regress_main,
    make_record,
)
from repro.pipeline import CompilerOptions, OptLevel, SpecMode, compile_source
from repro.target.isa import ChkA, LdC

# Same conflicting-store loop as test_obs.py: trained on the clean path,
# run on the path where every iteration's store collides.
CONFLICT_SRC = """
int a;
int b;
int *p;

int main(int n) {
    if (n > 100) { p = &a; } else { p = &b; }
    a = 7;
    int s = 0;
    int i = 0;
    while (i < n) {
        s = s + a;
        *p = s;
        s = s + a;
        i = i + 1;
    }
    print(s);
    return 0;
}
"""
STORE_LINE = 13  # the "*p = s;" line above

SPEC_OPTS = dict(
    options=CompilerOptions(opt_level=OptLevel.O3, spec_mode=SpecMode.PROFILE),
    train_args=[10],
)


def profiled_run(args, source=CONFLICT_SRC, **opts):
    out = compile_source(source, **(opts or SPEC_OPTS))
    return out, out.run(args, profile=True)


# -- loc threading (the tentpole) ---------------------------------------


def test_locs_thread_from_source_to_machine_code():
    out, _ = profiled_run([150])
    instrs = out.program.function("main").instrs
    located = [i for i in instrs if i.loc is not None]
    assert len(located) / len(instrs) >= 0.9
    nlines = len(CONFLICT_SRC.splitlines())
    for i in located:
        assert isinstance(i.loc, Loc)
        assert 1 <= i.loc.line <= nlines


def test_check_instructions_inherit_the_guarded_stores_loc():
    out, _ = profiled_run([150])
    checks = [
        i for i in out.program.function("main").instrs
        if isinstance(i, (LdC, ChkA))
    ]
    assert checks, "speculative build must contain check instructions"
    assert all(i.loc is not None and i.loc.line == STORE_LINE for i in checks)


# -- RunProfile: exact tiling -------------------------------------------


def test_attribution_tiles_the_slot_clock_exactly():
    out, result = profiled_run([150])
    prof = result.profile
    assert prof is not None
    assert prof.total_slots > 0
    # every slot the clock advanced is attributed to some instruction
    assert prof.attributed_slots == prof.total_slots
    # ... and nearly all of them to a source line (acceptance: >= 90%)
    assert prof.located_slots / prof.total_slots >= 0.9


def test_per_function_cycles_sum_to_cpu_cycles():
    out, result = profiled_run([150])
    prof = result.profile
    total = sum(prof.per_function_cycles().values())
    # slots/width vs the floor-divided counter: within one cycle
    assert abs(total - result.counters.cpu_cycles) <= 1.0


def test_alat_sites_attribute_collisions_and_failures():
    out, result = profiled_run([150])
    sites = list(result.profile.sites.values())
    assert sites, "speculative conflict run must populate ALAT sites"
    agg_failures = sum(s.check_failures for s in sites)
    agg_collisions = sum(s.collisions for s in sites)
    assert agg_failures == result.counters.check_failures
    assert agg_collisions == result.alat_stats.store_collisions
    assert agg_collisions > 0
    hot = max(sites, key=lambda s: s.checks)
    assert hot.allocations > 0
    assert hot.failure_rate > 0.9  # adversarial profile: ~every check fails
    assert hot.kinds & {"ld.a", "ld.sa", "ld.c", "ld.c.nc", "chk.a", "chk.a.nc"}


def test_unprofiled_run_counters_are_bit_identical():
    out = compile_source(CONFLICT_SRC, **SPEC_OPTS)
    profiled = out.run([150], profile=True)
    plain = compile_source(CONFLICT_SRC, **SPEC_OPTS).run([150])
    assert plain.profile is None
    assert profiled.counters.as_dict() == plain.counters.as_dict()
    assert profiled.output == plain.output
    from dataclasses import asdict

    assert asdict(profiled.alat_stats) == asdict(plain.alat_stats)


# -- ProfileReport -------------------------------------------------------


def test_report_listing_and_hot_lines():
    out, result = profiled_run([150])
    report = ProfileReport(result.profile, CONFLICT_SRC, result.counters)
    assert report.attribution_pct >= 90.0
    text = report.render(top=5)
    assert "% attributed to source lines" in text
    assert "*p = s;" in text  # listing echoes the source
    assert "miss" in text  # per-line misspeculation rate
    assert "hottest lines" in text
    assert "ALAT sites" in text
    # the site table carries the collision story
    assert "ld.c" in text or "chk.a" in text


def test_report_to_dict_and_events():
    out, result = profiled_run([150])
    report = ProfileReport(result.profile, CONFLICT_SRC)
    d = report.to_dict(top=3)
    assert d["attribution_pct"] >= 90.0
    assert len(d["hot_lines"]) == 3
    assert d["sites"]
    json.dumps(d)  # JSON-clean

    sink = MemorySink()
    report.emit_events(TraceContext(sink))
    lines = sink.of_type("profile.line")
    assert lines and all("cycle_pct" in e for e in lines)
    assert sink.of_type("profile.site")
    # disabled context: no events, no error
    report.emit_events(TraceContext())
    report.emit_events(None)


# -- diff ----------------------------------------------------------------


def test_diff_matches_counters_within_one_percent():
    base_opts = dict(
        options=CompilerOptions(opt_level=OptLevel.O3, spec_mode=SpecMode.NONE),
        train_args=[10],
    )
    _, base = profiled_run([150], **base_opts)
    _, spec = profiled_run([150])
    diff = diff_runs(base, spec)
    c = diff["cycles"]
    assert c["baseline"] == base.counters.cpu_cycles
    assert c["delta"] == base.counters.cpu_cycles - spec.counters.cpu_cycles
    # profiled per-function delta agrees with the counter delta (<= 1%)
    tolerance = max(1.0, 0.01 * max(abs(c["delta"]), 1))
    assert abs(c["profiled_delta"] - c["delta"]) <= tolerance
    assert diff["loads"]["eliminated"] == (
        base.counters.retired_loads - spec.counters.retired_loads
    )
    assert diff["check_overhead"]["check_failures"] == spec.counters.check_failures
    assert "main" in diff["per_function"]

    text = format_diff(diff)
    assert "cpu cycles" in text
    assert "per-function" in text
    json.dumps(diff)


def test_diff_without_profiles_omits_per_function():
    out = compile_source(CONFLICT_SRC, **SPEC_OPTS)
    r1 = out.run([150])
    r2 = compile_source(CONFLICT_SRC, **SPEC_OPTS).run([150])
    diff = diff_runs(r1, r2)
    assert "per_function" not in diff
    format_diff(diff)


# -- regression gate -----------------------------------------------------


def _counters(cycles=1000, loads=50):
    return {
        "cpu_cycles": cycles,
        "data_access_cycles": 80,
        "retired_loads": loads,
        "check_failures": 2,
        "recovery_cycles": 10,
    }


def test_gate_seeds_then_passes_then_flags(tmp_path):
    hist = str(tmp_path / "history")
    rec = make_record("gzip", {"speculative": _counters()})

    first = gate_records(hist, {"gzip": rec})
    assert first.seeded == ["gzip"] and not first.flags and not first.failed
    assert len(load_history(hist, "gzip")) == 1

    # identical second run: checked, no flags, history grows
    second = gate_records(hist, {"gzip": make_record("gzip", {"speculative": _counters()})})
    assert second.checked == ["gzip"] and not second.flags
    assert len(load_history(hist, "gzip")) == 2

    # >10% cycle regression: fail-severity flag
    bad = make_record("gzip", {"speculative": _counters(cycles=1200)})
    third = gate_records(hist, {"gzip": bad})
    assert third.failed
    flag = next(f for f in third.flags if f.severity == "fail")
    assert flag.counter == "cpu_cycles" and flag.bench == "gzip"
    assert flag.pct == pytest.approx(20.0)
    assert "REGRESSION" in str(flag)
    assert latest_record(hist, "gzip")["modes"]["speculative"]["cpu_cycles"] == 1200


def test_gate_warn_counters_do_not_fail(tmp_path):
    hist = str(tmp_path / "h")
    gate_records(hist, {"b": make_record("b", {"speculative": _counters()})})
    worse_loads = make_record("b", {"speculative": _counters(loads=100)})
    report = gate_records(hist, {"b": worse_loads})
    assert report.flags and not report.failed
    assert all(f.severity == "warn" for f in report.flags)
    assert "warning" in report.format()


def test_gate_within_threshold_is_quiet(tmp_path):
    hist = str(tmp_path / "h")
    gate_records(hist, {"b": make_record("b", {"speculative": _counters()})})
    slightly = make_record("b", {"speculative": _counters(cycles=1050)})
    report = gate_records(hist, {"b": slightly}, threshold=0.10)
    assert not report.flags
    assert "no counters regressed" in report.format()


def test_gate_no_update_leaves_history_untouched(tmp_path):
    hist = str(tmp_path / "h")
    gate_records(hist, {"b": make_record("b", {"speculative": _counters()})})
    gate_records(
        hist, {"b": make_record("b", {"speculative": _counters(cycles=9999)})},
        update=False,
    )
    assert len(load_history(hist, "b")) == 1


def test_compare_records_skips_new_modes_and_zero_baselines():
    prev = {"bench": "b", "modes": {"speculative": {"cpu_cycles": 0}}}
    cur = {
        "bench": "b",
        "modes": {
            "speculative": {"cpu_cycles": 100},
            "baseline": {"cpu_cycles": 50},  # no previous: skipped
        },
    }
    assert compare_records(prev, cur) == []


def test_gate_metrics_consumes_harness_shape_and_cli(tmp_path):
    metrics = {
        "gzip": {
            "speculative": {"counters": _counters()},
            "baseline": {"counters": _counters(cycles=1100)},
        }
    }
    hist = str(tmp_path / "history")
    report = gate_metrics(hist, metrics)
    assert report.seeded == ["gzip"]

    mpath = tmp_path / "metrics.json"
    # regressed speculative cycles beyond threshold
    metrics["gzip"]["speculative"]["counters"]["cpu_cycles"] = 2000
    mpath.write_text(json.dumps(metrics))
    rc = regress_main(["--metrics", str(mpath), "--history", hist])
    assert rc == 1
    rc = regress_main(
        ["--metrics", str(mpath), "--history", hist, "--warn-only", "--no-update"]
    )
    assert rc == 0


def test_gate_cli_refuses_to_gate_without_history(tmp_path, capsys):
    """No history and no --allow-seed: a distinct exit code plus a clear
    message, and nothing written — a misconfigured --history path must
    not silently seed and pass CI."""
    metrics = {"gzip": {"speculative": {"counters": _counters()}}}
    mpath = tmp_path / "metrics.json"
    mpath.write_text(json.dumps(metrics))
    hist = str(tmp_path / "nonexistent-history")

    rc = regress_main(["--metrics", str(mpath), "--history", hist])
    assert rc == EXIT_NO_HISTORY and rc not in (0, 1)
    err = capsys.readouterr().err
    assert "no benchmark history" in err and "gzip" in err
    assert "--allow-seed" in err
    assert load_history(hist, "gzip") == []


def test_gate_cli_allow_seed_records_baseline(tmp_path):
    metrics = {"gzip": {"speculative": {"counters": _counters()}}}
    mpath = tmp_path / "metrics.json"
    mpath.write_text(json.dumps(metrics))
    hist = str(tmp_path / "history")

    rc = regress_main(
        ["--metrics", str(mpath), "--history", hist, "--allow-seed"]
    )
    assert rc == 0
    assert len(load_history(hist, "gzip")) == 1

    # with history present, subsequent runs gate normally
    rc = regress_main(["--metrics", str(mpath), "--history", hist])
    assert rc == 0
    assert len(load_history(hist, "gzip")) == 2


# -- JsonlSink exception safety -----------------------------------------


def test_jsonl_sink_mid_run_raise_leaves_valid_lines(tmp_path):
    path = tmp_path / "t.jsonl"
    sink = JsonlSink(str(path), autoflush=True)
    obs = TraceContext(sink)
    with pytest.raises(RuntimeError):
        with obs:
            with obs.phase("pre"):
                obs.event("spec.decision", verdict="alat")
                raise RuntimeError("boom")
    # file closed by the context manager; every line parses
    events = read_jsonl(str(path))
    names = [e["event"] for e in events]
    assert names == ["phase.begin", "spec.decision", "phase.end"]
    assert events[-1]["error"] == "RuntimeError: boom"


def test_jsonl_sink_unserialisable_value_leaves_file_untouched(tmp_path):
    path = tmp_path / "t.jsonl"
    with JsonlSink(str(path)) as sink:
        sink.emit({"event": "ok", "n": 1})
        sink.emit({"event": "odd", "obj": object()})  # stringified, fine
    for line in path.read_text().splitlines():
        json.loads(line)


def test_jsonl_sink_emit_after_close_is_noop():
    buf = io.StringIO()
    sink = JsonlSink(buf)
    sink.emit({"a": 1})
    sink.close()
    sink.close()  # idempotent
    sink.emit({"b": 2})
    assert [json.loads(l) for l in buf.getvalue().splitlines()] == [{"a": 1}]


def test_jsonl_sink_autoflush_flushes_per_event(tmp_path):
    path = tmp_path / "t.jsonl"
    sink = JsonlSink(str(path), autoflush=True)
    sink.emit({"event": "one"})
    # visible on disk before close — a hard crash would keep it
    assert json.loads(path.read_text())["event"] == "one"
    sink.close()


# -- phase error bracket -------------------------------------------------


def test_phase_end_carries_error_when_body_raises():
    sink = MemorySink()
    obs = TraceContext(sink)
    with pytest.raises(ValueError):
        with obs.phase("frontend"):
            raise ValueError("bad token")
    end = sink.of_type("phase.end")[0]
    assert end["phase"] == "frontend"
    assert end["error"] == "ValueError: bad token"
    assert end["wall_ms"] >= 0
    # wall time still accumulated
    assert "frontend" in obs.phase_times


def test_phase_end_has_no_error_field_on_success():
    sink = MemorySink()
    obs = TraceContext(sink)
    with obs.phase("frontend"):
        pass
    assert "error" not in sink.of_type("phase.end")[0]
