"""Opcode-level simulator tests on hand-assembled machine programs.

These pin down the instruction semantics and the timing model without
any compiler in the loop — the ISA contract the code generator relies
on."""

import pytest

from repro.errors import MachineError
from repro.ir.expr import BinOpKind, UnOpKind
from repro.machine.cpu import MachineConfig, Simulator
from repro.target.isa import (
    AllocH,
    Alu,
    Br,
    Brnz,
    CallF,
    ChkA,
    InvalaE,
    Label,
    Ld,
    LdC,
    Lea,
    LoadKind,
    MFunction,
    Mov,
    MovI,
    MProgram,
    PredLd,
    PrintR,
    Region,
    RetF,
    St,
    Un,
)


def make_program(instrs, nregs=16, frame_words=4, data=None):
    program = MProgram("hand")
    mf = MFunction("main", 0)
    for instr in instrs:
        mf.emit(instr)
    mf.nregs = nregs
    mf.frame_words = frame_words
    program.add(mf)
    if data:
        program.data.update(data)
    return program


def run(instrs, **kw):
    config = kw.pop("config", None)
    sim = Simulator(make_program(instrs, **kw), config)
    return sim, sim.run([])


def test_mov_and_ret():
    _sim, res = run([MovI(0, 42), RetF(0)])
    assert res.exit_value == 42


def test_alu_semantics():
    _sim, res = run(
        [
            MovI(0, 10),
            MovI(1, 3),
            Alu(BinOpKind.MOD, 2, 0, ("r", 1)),
            Alu(BinOpKind.MUL, 3, 2, 7),
            RetF(3),
        ]
    )
    assert res.exit_value == 7


def test_unop_semantics():
    _sim, res = run([MovI(0, -5), Un(UnOpKind.NEG, 1, 0), RetF(1)])
    assert res.exit_value == 5


def test_store_load_roundtrip():
    _sim, res = run(
        [
            Lea(0, Region.GLOBAL, 0x2000),
            MovI(1, 99),
            St(0, 1),
            Ld(2, 0),
            RetF(2),
        ]
    )
    assert res.exit_value == 99
    assert res.counters.retired_loads == 1
    assert res.counters.retired_stores == 1


def test_frame_addressing_zeroed():
    _sim, res = run([Lea(0, Region.FRAME, 2), Ld(1, 0), RetF(1)])
    assert res.exit_value == 0


def test_data_image():
    _sim, res = run(
        [Lea(0, Region.GLOBAL, 0x1000), Ld(1, 0), RetF(1)],
        data={0x1000: 123},
    )
    assert res.exit_value == 123


def test_ld_a_arms_alat_and_ld_c_succeeds():
    sim, res = run(
        [
            Lea(0, Region.GLOBAL, 0x1000),
            Ld(1, 0, LoadKind.ADVANCED),
            LdC(1, 0),
            RetF(1),
        ],
        data={0x1000: 7},
    )
    assert res.exit_value == 7
    assert res.counters.check_instructions == 1
    assert res.counters.check_failures == 0
    assert res.counters.retired_loads == 1  # the successful ld.c is free


def test_store_collision_makes_ld_c_reload():
    _sim, res = run(
        [
            Lea(0, Region.GLOBAL, 0x1000),
            Ld(1, 0, LoadKind.ADVANCED),   # r1 = 7, entry armed
            MovI(2, 55),
            St(0, 2),                      # collides
            LdC(1, 0),                     # must reload 55
            RetF(1),
        ],
        data={0x1000: 7},
    )
    assert res.exit_value == 55
    assert res.counters.check_failures == 1
    assert res.counters.retired_loads == 2


def test_ld_c_nc_reallocates_after_miss():
    _sim, res = run(
        [
            Lea(0, Region.GLOBAL, 0x1000),
            LdC(1, 0, clear=False),   # cold miss: reload + re-arm
            LdC(1, 0, clear=False),   # now hits
            RetF(1),
        ],
        data={0x1000: 9},
    )
    assert res.exit_value == 9
    assert res.counters.check_failures == 1
    assert res.counters.check_instructions == 2


def test_ld_c_clear_removes_entry():
    _sim, res = run(
        [
            Lea(0, Region.GLOBAL, 0x1000),
            Ld(1, 0, LoadKind.ADVANCED),
            LdC(1, 0, clear=True),     # hit, entry cleared
            LdC(1, 0, clear=True),     # miss now
            RetF(1),
        ],
        data={0x1000: 4},
    )
    assert res.counters.check_failures == 1


def test_invala_e_forces_miss():
    _sim, res = run(
        [
            Lea(0, Region.GLOBAL, 0x1000),
            Ld(1, 0, LoadKind.ADVANCED),
            InvalaE(1),
            LdC(1, 0),
            RetF(1),
        ],
        data={0x1000: 3},
    )
    assert res.counters.check_failures == 1


def test_chk_a_success_skips_recovery():
    _sim, res = run(
        [
            Lea(0, Region.GLOBAL, 0x1000),
            Ld(1, 0, LoadKind.ADVANCED),
            ChkA(1, ".rec"),
            Label(".res"),
            RetF(1),
            Label(".rec"),
            MovI(1, -1),
            Br(".res"),
        ],
        data={0x1000: 11},
    )
    assert res.exit_value == 11
    assert res.counters.recovery_cycles == 0


def test_chk_a_failure_runs_recovery_and_pays():
    config = MachineConfig(recovery_penalty=40)
    _sim, res = run(
        [
            Lea(0, Region.GLOBAL, 0x1000),
            Ld(1, 0, LoadKind.ADVANCED),
            MovI(2, 5),
            St(0, 2),                  # collide
            ChkA(1, ".rec"),
            Label(".res"),
            RetF(1),
            Label(".rec"),
            Ld(1, 0),
            Br(".res"),
        ],
        data={0x1000: 11},
        config=config,
    )
    assert res.exit_value == 5
    assert res.counters.check_failures == 1
    assert res.counters.recovery_cycles == 40


def test_ld_sa_defers_faults():
    _sim, res = run(
        [
            MovI(0, 0),                          # null address
            Ld(1, 0, LoadKind.SPEC_ADVANCED),    # must not fault
            RetF(1),
        ]
    )
    assert res.exit_value == 0


def test_normal_load_faults_on_null():
    with pytest.raises(MachineError):
        run([MovI(0, 0), Ld(1, 0), RetF(1)])


def test_pred_ld_fires_only_when_predicate_set():
    _sim, res = run(
        [
            Lea(0, Region.GLOBAL, 0x1000),
            MovI(1, 0),                 # predicate false
            MovI(3, 77),
            PredLd(3, 1, 0),            # must keep 77
            MovI(1, 1),                 # predicate true
            PredLd(3, 1, 0),            # loads 12
            RetF(3),
        ],
        data={0x1000: 12},
    )
    assert res.exit_value == 12
    assert res.counters.retired_loads == 1


def test_branches_and_labels():
    _sim, res = run(
        [
            MovI(0, 1),
            Brnz(0, ".take"),
            MovI(1, 111),
            RetF(1),
            Label(".take"),
            MovI(1, 222),
            RetF(1),
        ]
    )
    assert res.exit_value == 222
    assert res.counters.branches == 1


def test_alloc_heap_disjoint_and_zeroed():
    _sim, res = run(
        [
            MovI(0, 4),
            AllocH(1, 0),
            AllocH(2, 0),
            Alu(BinOpKind.NE, 3, 1, ("r", 2)),
            Ld(4, 1),                  # zeroed
            Alu(BinOpKind.ADD, 5, 3, ("r", 4)),
            RetF(5),
        ]
    )
    assert res.exit_value == 1  # pointers differ, contents zero


def test_call_and_register_windows():
    program = MProgram("call")
    callee = MFunction("double_it", 1)
    callee.emit(Alu(BinOpKind.ADD, 1, 0, ("r", 0)))
    callee.emit(RetF(1))
    callee.nregs = 2
    main = MFunction("main", 0)
    main.emit(MovI(5, 21))
    main.emit(CallF("double_it", [5], 6))
    main.emit(RetF(6))
    main.nregs = 8
    program.add(callee)
    program.add(main)
    res = Simulator(program).run([])
    assert res.exit_value == 42
    assert res.counters.calls == 1


def test_print_output_formatting():
    sim, res = run([MovI(0, 3), PrintR(0), MovI(1, 2.5), PrintR(1), RetF(0)])
    assert res.output == ["3", "2.5"]


def test_timing_load_latency_visible():
    """A dependent use of a cold load stalls; an independent chain
    doesn't — the scoreboard must show the difference."""
    dependent = [
        Lea(0, Region.GLOBAL, 0x4000),
        Ld(1, 0),
        Alu(BinOpKind.ADD, 2, 1, 1),   # depends on the load
        RetF(2),
    ]
    independent = [
        Lea(0, Region.GLOBAL, 0x4000),
        Ld(1, 0),
        Alu(BinOpKind.ADD, 2, 0, 1),   # depends only on the Lea
        RetF(2),
    ]
    _s1, r1 = run(dependent)
    _s2, r2 = run(independent)
    assert r1.counters.cpu_cycles > r2.counters.cpu_cycles


def test_issue_width_scales_cycles():
    instrs = [MovI(i, i) for i in range(12)] + [RetF(0)]
    wide = Simulator(make_program(instrs), MachineConfig(issue_width=4)).run([])
    narrow = Simulator(make_program(instrs), MachineConfig(issue_width=1)).run([])
    assert narrow.counters.cpu_cycles > wide.counters.cpu_cycles
