"""Paper-conformance suite: each transformation figure from section 2
as an IR-pattern assertion.

These tests document — in executable form — that the compiler emits the
code shapes the paper draws.  They complement the behavioural tests:
here we check *what* is generated, not just that it runs correctly.
"""

import pytest

from repro.ir.expr import VarRead
from repro.ir.stmt import Assign, InvalidateCheck, SpecFlag
from repro.pipeline import CompilerOptions, OptLevel, SpecMode, compile_source

from tests.conftest import assert_all_modes_agree


def spec_compile(src, train, rounds=1):
    return compile_source(
        src,
        CompilerOptions(
            opt_level=OptLevel.O3, spec_mode=SpecMode.PROFILE, rounds=rounds
        ),
        train_args=train,
    )


def flagged(out, *flags):
    return [
        s
        for fn in out.module.iter_functions()
        for s in fn.iter_stmts()
        if isinstance(s, Assign) and s.spec_flag in flags
    ]


# ---------------------------------------------------------------------------
# Figure 1(a): read following read -> ld.a ... ld.c
# ---------------------------------------------------------------------------

FIG_1A = """
int a; int b;
int *q;
int main(int n) {
    if (n > 100) { q = &a; } else { q = &b; }
    a = 5;
    int x = a + 1;
    *q = n;
    int y = a + 3;
    print(x + y);
    return 0;
}
"""


def test_figure_1a_ld_a_then_ld_c():
    out = spec_compile(FIG_1A, [6])
    advanced = flagged(out, SpecFlag.LD_A, SpecFlag.LD_SA)
    checks = flagged(out, SpecFlag.LD_C, SpecFlag.LD_C_NC)
    assert advanced and checks
    # the check re-validates the same temporary the advanced load set
    assert {s.target.id for s in checks} & {s.target.id for s in advanced}
    assert_all_modes_agree(FIG_1A, [6], train_args=[6])
    assert_all_modes_agree(FIG_1A, [200], train_args=[6])  # mis-speculate


# ---------------------------------------------------------------------------
# Figure 1(b): read following write -> store-forward + ld.a after store
# ---------------------------------------------------------------------------

FIG_1B = """
int a; int b;
int *q;
int main(int n) {
    if (n > 100) { q = &a; } else { q = &b; }
    a = n * 2;
    *q = n;
    print(a + 3);
    return 0;
}
"""


def test_figure_1b_ld_a_after_the_store():
    out = spec_compile(FIG_1B, [6])
    main = out.module.main
    stmts = list(main.iter_stmts())
    # find the direct store to a (now `a = t` after forwarding)
    store_idx = next(
        i
        for i, s in enumerate(stmts)
        if isinstance(s, Assign)
        and not s.target.is_temp
        and s.target.name == "a"
    )
    after = stmts[store_idx + 1]
    assert isinstance(after, Assign) and after.spec_flag is SpecFlag.LD_A, (
        "Figure 1(b): an ld.a must directly follow the store to secure "
        "the ALAT entry"
    )
    # forwarding: the store's RHS is a register read
    assert isinstance(stmts[store_idx].expr, VarRead)


# ---------------------------------------------------------------------------
# Figure 1(c): multiple redundant loads -> .nc chain ending in .clr
# ---------------------------------------------------------------------------

FIG_1C = """
int a; int b;
int *q;
int main(int n) {
    if (n > 100) { q = &a; } else { q = &b; }
    a = 5;
    int x = a + 1;
    *q = n;
    int y = a + 3;
    *q = n + 1;
    int z = a - 5;
    print(x + y + z);
    return 0;
}
"""


def test_figure_1c_nc_chain_ends_in_clr():
    out = spec_compile(FIG_1C, [6])
    checks = flagged(out, SpecFlag.LD_C, SpecFlag.LD_C_NC)
    assert len(checks) >= 2, "two speculated stores -> two checks"
    kinds = [s.spec_flag for s in checks]
    assert kinds[-1] is SpecFlag.LD_C, "the final check clears the entry"
    assert SpecFlag.LD_C_NC in kinds[:-1], "intermediate checks keep it"
    assert_all_modes_agree(FIG_1C, [6], train_args=[6])


# ---------------------------------------------------------------------------
# Figure 2: partial redundancy -> invala.e + ld.c at the use
# ---------------------------------------------------------------------------

FIG_2 = """
int a; int b;
int *q;
int main(int n) {
    if (n > 100) { q = &a; } else { q = &b; }
    int x = 0;
    int y = 0;
    if (n % 2 == 0) { x = a + 1; }
    *q = n;
    if (n % 3 == 0) { y = a + 3; }
    print(x); print(y);
    return 0;
}
"""


def test_figure_2_invala_scheme():
    out = spec_compile(FIG_2, [6])
    invalas = [
        s
        for s in out.module.main.iter_stmts()
        if isinstance(s, InvalidateCheck)
    ]
    assert invalas, "partial redundancy uses invala.e at a dominating point"
    checks = flagged(out, SpecFlag.LD_C, SpecFlag.LD_C_NC)
    assert checks
    # the invalidation targets the same temp the checks validate
    assert {i.temp.id for i in invalas} & {c.target.id for c in checks}
    for n in (6, 4, 9, 7, 102, 200):
        assert_all_modes_agree(FIG_2, [n], train_args=[6])


# ---------------------------------------------------------------------------
# Figure 3: speculative loop invariant -> ld.sa above, check inside
# ---------------------------------------------------------------------------

FIG_3 = """
int a; int b;
int *q;
int main(int n) {
    if (n > 100) { q = &a; } else { q = &b; }
    a = 5;
    int s = 0;
    int i = 0;
    while (i < n) {
        *q = i;
        s = s + a;
        i = i + 1;
    }
    print(s);
    return 0;
}
"""


def test_figure_3_hoisted_ld_sa_and_in_loop_check():
    from repro.analysis import compute_dominators, find_natural_loops

    out = spec_compile(FIG_3, [10])
    fn = out.module.main
    fn.compute_preds()
    loops = find_natural_loops(fn, compute_dominators(fn))
    assert len(loops) == 1
    (loop,) = loops
    hoisted = [
        s
        for s in fn.iter_stmts()
        if isinstance(s, Assign)
        and s.spec_flag in (SpecFlag.LD_SA, SpecFlag.LD_A)
        and s.block is not None
        and not loop.contains_block(s.block)
    ]
    in_loop_checks = [
        s
        for s in fn.iter_stmts()
        if isinstance(s, Assign)
        and s.spec_flag.is_check
        and s.block is not None
        and loop.contains_block(s.block)
    ]
    assert hoisted, "the leading load must move out of the loop"
    assert in_loop_checks, "each iteration re-validates after the store"
    for n in (10, 200, 0):
        assert_all_modes_agree(FIG_3, [n], train_args=[10])


# ---------------------------------------------------------------------------
# Figure 4: cascade -> chk.a with recovery reloading address and value
# ---------------------------------------------------------------------------

FIG_4 = """
int a; int b; int c;
int *p;
int *other;
int **q;
int **w;
int main(int n) {
    q = &p;
    p = &a;
    other = &c;
    w = &other;
    if (n == -1) { w = &p; }
    a = 3;
    int s = 0;
    int i = 0;
    while (i < n) {
        s = s + *(*q);
        *w = &b;
        s = s + *(*q);
        i = i + 1;
    }
    print(s);
    print(*p);
    return 0;
}
"""


def test_figure_4_chk_a_with_two_part_recovery():
    out = spec_compile(FIG_4, [10], rounds=2)
    chks = flagged(out, SpecFlag.CHK_A, SpecFlag.CHK_A_NC)
    assert chks, "cascade promotion must produce chk.a"
    for chk in chks:
        assert chk.recovery and len(chk.recovery) >= 2, (
            "recovery reloads the address AND the dependent value "
            "(Figure 4(c))"
        )
    for n in (10, 30):
        assert_all_modes_agree(FIG_4, [n], train_args=[10])
