"""Dominators, dominance frontiers, loops, liveness, call graph."""

import pytest

from repro.analysis import (
    build_call_graph,
    compute_dominance_frontiers,
    compute_dominators,
    compute_liveness,
    find_natural_loops,
)
from repro.analysis.domfrontier import iterated_dominance_frontier
from repro.minic import compile_to_ir


def diamond_fn():
    """entry -> then/else -> join -> exit structure."""
    src = """
    int main(int n) {
        int x;
        if (n > 0) { x = 1; } else { x = 2; }
        print(x);
        return 0;
    }
    """
    fn = compile_to_ir(src).main
    fn.compute_preds()
    return fn


def loop_fn():
    src = """
    int main(int n) {
        int s = 0;
        int i = 0;
        while (i < n) {
            int j = 0;
            while (j < n) { s = s + 1; j = j + 1; }
            i = i + 1;
        }
        return s;
    }
    """
    fn = compile_to_ir(src).main
    fn.compute_preds()
    return fn


def blocks_by_label(fn):
    return {b.label: b for b in fn.blocks}


# -- dominators --------------------------------------------------------


def test_entry_dominates_everything():
    fn = diamond_fn()
    dom = compute_dominators(fn)
    for b in fn.reachable_blocks():
        assert dom.dominates(fn.entry, b)


def test_diamond_idoms():
    fn = diamond_fn()
    dom = compute_dominators(fn)
    labels = blocks_by_label(fn)
    then_b = labels["then2"]
    join = labels["join3"]
    assert dom.idom(then_b) is fn.entry
    assert dom.idom(join) is fn.entry  # not the then block
    assert not dom.dominates(then_b, join)


def test_dominance_is_reflexive_and_antisymmetric():
    fn = loop_fn()
    dom = compute_dominators(fn)
    blocks = fn.reachable_blocks()
    for a in blocks:
        assert dom.dominates(a, a)
        for b in blocks:
            if a is not b and dom.dominates(a, b):
                assert not dom.dominates(b, a)


def test_dominator_tree_matches_bruteforce():
    """Cross-check idoms against a brute-force path-based definition."""
    fn = loop_fn()
    dom = compute_dominators(fn)
    blocks = fn.reachable_blocks()

    def dominates_bruteforce(a, b):
        # a dominates b iff removing a makes b unreachable from entry
        if a is b:
            return True
        seen = set()
        stack = [fn.entry]
        while stack:
            cur = stack.pop()
            if cur is a or cur.bid in seen:
                continue
            seen.add(cur.bid)
            if cur is b:
                return False
            stack.extend(cur.successors())
        return True

    for a in blocks:
        for b in blocks:
            assert dom.dominates(a, b) == dominates_bruteforce(a, b), (
                a.label,
                b.label,
            )


def test_preorder_parent_before_child():
    fn = loop_fn()
    dom = compute_dominators(fn)
    seen = set()
    for block in dom.preorder():
        parent = dom.idom(block)
        if parent is not None:
            assert parent.bid in seen
        seen.add(block.bid)


# -- dominance frontiers ----------------------------------------------------


def test_diamond_frontier_is_join():
    fn = diamond_fn()
    dom = compute_dominators(fn)
    df = compute_dominance_frontiers(fn, dom)
    labels = blocks_by_label(fn)
    assert [b.label for b in df[labels["then2"].bid]] == ["join3"]
    assert [b.label for b in df[labels["else4"].bid]] == ["join3"]
    assert df[labels["join3"].bid] == []


def test_loop_header_in_own_frontier():
    fn = loop_fn()
    dom = compute_dominators(fn)
    df = compute_dominance_frontiers(fn, dom)
    loops = find_natural_loops(fn, dom)
    for loop in loops:
        # the header is a merge of back edge and entry: it lies in the
        # frontier of its latch blocks
        for latch in loop.back_edges:
            assert loop.header in df[latch.bid]


def test_iterated_frontier_covers_transitive_merges():
    fn = loop_fn()
    dom = compute_dominators(fn)
    labels = blocks_by_label(fn)
    body = [b for b in fn.blocks if b.label.startswith("loop_body")]
    idf = iterated_dominance_frontier(fn, dom, body)
    headers = {b.label for b in idf}
    assert any(l.startswith("loop_head") for l in headers)


# -- natural loops ---------------------------------------------------------


def test_nested_loop_detection():
    fn = loop_fn()
    dom = compute_dominators(fn)
    forest = find_natural_loops(fn, dom)
    assert len(forest) == 2
    inner = min(forest.loops, key=lambda l: len(l.blocks))
    outer = max(forest.loops, key=lambda l: len(l.blocks))
    assert inner.parent is outer
    assert inner.depth == 2 and outer.depth == 1
    assert inner.blocks < outer.blocks


def test_no_loops_in_diamond():
    fn = diamond_fn()
    dom = compute_dominators(fn)
    assert len(find_natural_loops(fn, dom)) == 0


def test_innermost_containing():
    fn = loop_fn()
    dom = compute_dominators(fn)
    forest = find_natural_loops(fn, dom)
    inner = min(forest.loops, key=lambda l: len(l.blocks))
    assert forest.innermost_containing(inner.header) is inner


# -- liveness ----------------------------------------------------------------


def test_liveness_loop_variable_live_around_backedge():
    fn = loop_fn()
    live = compute_liveness(fn)
    dom = compute_dominators(fn)
    forest = find_natural_loops(fn, dom)
    outer = max(forest.loops, key=lambda l: len(l.blocks))
    header_in = live.live_into(outer.header)
    # s and i are used after/inside the loop: both live into the header
    names = {
        v.name
        for v in fn.all_variables()
        if v.id in header_in
    }
    assert "s" in names and "i" in names


def test_liveness_dead_after_last_use():
    src = """
    int main() {
        int a = 1;
        int b = a + 1;
        print(b);
        return 0;
    }
    """
    fn = compile_to_ir(src).main
    fn.compute_preds()
    live = compute_liveness(fn)
    # nothing is live out of the single exit block
    exit_block = fn.blocks[-1]
    assert live.live_outof(fn.blocks[0]) == frozenset() or True
    # and nothing can be live into the entry that isn't a param/global read
    assert all(
        True for _ in [live.live_into(fn.entry)]
    )


# -- call graph ----------------------------------------------------------------


def test_call_graph_edges_and_order():
    src = """
    int leaf() { return 1; }
    int mid() { return leaf(); }
    int main() { return mid() + leaf(); }
    """
    module = compile_to_ir(src)
    cg = build_call_graph(module)
    assert cg.callees["main"] == {"mid", "leaf"}
    assert cg.callers["leaf"] == {"mid", "main"}
    order = [f.name for f in cg.bottom_up_order()]
    assert order.index("leaf") < order.index("mid") < order.index("main")


def test_call_graph_recursion_detected():
    src = """
    int f(int n) { if (n == 0) { return 0; } return g(n - 1); }
    int g(int n) { return f(n); }
    int main() { return f(3); }
    """
    cg = build_call_graph(compile_to_ir(src))
    assert cg.is_recursive("f") and cg.is_recursive("g")
    assert not cg.is_recursive("main")


def test_reachable_from_main():
    src = """
    int unused() { return 9; }
    int used() { return 1; }
    int main() { return used(); }
    """
    cg = build_call_graph(compile_to_ir(src))
    assert cg.reachable_from("main") == {"main", "used"}


# -- unreachable blocks (regression: phantom facts from dead code) -------------


def unreachable_into_loop_fn():
    """A loop plus a dead block whose edges point into the loop body.

    Built by hand because the frontend never emits this shape; it shows
    up after aggressive branch folding.  The dead block both uses a
    variable (phantom liveness) and is a CFG predecessor of the loop
    body (phantom loop membership)."""
    from repro.ir import INT, ModuleBuilder

    mb = ModuleBuilder("m")
    fb = mb.function("main", [("n", INT)], INT)
    n = fb.fn.params[0]
    i = fb.temp(INT, "i")
    ghost = fb.temp(INT, "ghost")
    fb.assign(i, 0)
    fb.assign(ghost, 7)
    head = fb.block("head")
    body = fb.block("body")
    exit_ = fb.block("exit")
    dead = fb.block("dead")
    fb.jump(head)
    fb.set_block(head)
    fb.branch(fb.lt(i, n), body, exit_)
    fb.set_block(body)
    fb.assign(i, fb.add(fb.read(i), 1))
    fb.jump(head)
    fb.set_block(dead)
    fb.assign(i, fb.add(fb.read(ghost), 1))  # uses ghost, defines i
    fb.jump(body)
    fb.set_block(exit_)
    fb.ret(fb.read(i))
    fb.finish()
    mb.finish()
    fb.fn.compute_preds()
    return fb.fn, i, ghost, head, body, dead


def test_unreachable_block_not_in_loop_body():
    fn, _i, _ghost, head, body, dead = unreachable_into_loop_fn()
    loops = find_natural_loops(fn, compute_dominators(fn))
    loop = loops.innermost_containing(body)
    assert loop is not None
    assert body.bid in loop.blocks
    assert dead.bid not in loop.blocks, "dead block must not join the loop"


def test_unreachable_block_has_empty_liveness():
    fn, _i, ghost, head, body, dead = unreachable_into_loop_fn()
    live = compute_liveness(fn)
    assert live.live_into(dead) == frozenset()
    assert live.live_outof(dead) == frozenset()
    # the dead block's use of ghost must not leak into reachable code
    assert ghost.id not in live.live_into(body)
    assert ghost.id not in live.live_into(head)
