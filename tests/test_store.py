"""The experiment results store: records, durability, queries,
comparison, history bridging, regress parity, CLI, and the dashboard.

The store is the PR's durability-critical subsystem, so the torn-line
tests exercise the exact crash shapes the design defends against: a
writer killed mid-``write`` (torn final line) and an append landing
after such a crash (fresh-line repair).
"""

from __future__ import annotations

import json
import os

import pytest

from repro.obs.regress import (
    EXIT_NO_HISTORY,
    JsonlHistory,
    StoreHistory,
    gate_records,
)
from repro.obs.regress import main as regress_main
from repro.obs.regress import make_record as make_history_record
from repro.obs.store import (
    PIPELINE_VERSION,
    ResultsStore,
    StoreError,
    compute_run_id,
    make_record,
    new_batch_id,
    render_dashboard,
)
from repro.obs.store.__main__ import main as store_main
from repro.obs.store.history import (
    append_history_record,
    import_history,
    store_history,
)
from repro.obs.store.query import (
    compare_records,
    get_metric,
    latest_matrix,
    resolve_run,
    runs,
    series,
)
from repro.obs.store.render import ascii_spark, format_run_list


def _metrics(cycles: int = 1000, wall: float = 12.5) -> dict:
    return {
        "counters": {
            "cpu_cycles": cycles,
            "data_access_cycles": cycles // 3,
            "retired_loads": 100,
            "retired_indirect_loads": 40,
            "check_instructions": 10,
            "check_failures": 1,
            "recovery_cycles": 5,
        },
        "alat": {"capacity_evictions": 2, "collisions": 1},
        "host": {"wall_ms": wall, "sim_steps_per_sec": 1e6},
    }


def _record(bench="gzip", mode="speculative", ts=100.0, **kw):
    kw.setdefault("metrics", _metrics())
    kw.setdefault("suite", "matrix")
    kw.setdefault("git_rev", None)
    return make_record(bench, mode, kw.pop("metrics"), timestamp=ts, **kw)


# -- records and run ids -------------------------------------------------


def test_record_round_trip(tmp_path):
    store = ResultsStore(tmp_path / "store")
    rec = _record(sites=[{"site": "p", "line": 7, "allocations": 3}])
    run_id = store.ingest(rec)
    assert len(run_id) == 16
    (got,) = store.records()
    assert got["run_id"] == run_id
    assert got["bench"] == "gzip" and got["mode"] == "speculative"
    assert got["metrics"]["counters"]["cpu_cycles"] == 1000
    assert got["sites"][0]["line"] == 7
    assert got["pipeline_version"] == PIPELINE_VERSION


def test_run_id_is_content_addressed():
    a = compute_run_id(bench="gzip", mode="baseline")
    assert a == compute_run_id(bench="gzip", mode="baseline")
    assert a != compute_run_id(bench="gzip", mode="speculative")
    assert a != compute_run_id(
        bench="gzip", mode="baseline", config={"rounds": 2}
    )
    assert a != compute_run_id(
        bench="gzip", mode="baseline", machine={"alat_entries": 16}
    )
    # re-running one configuration accumulates records under one id
    assert _record(ts=1.0)["run_id"] == _record(ts=2.0)["run_id"]


def test_ingest_rejects_incomplete_records(tmp_path):
    store = ResultsStore(tmp_path)
    with pytest.raises(StoreError, match="missing 'metrics'"):
        store.ingest({"run_id": "x", "kind": "run", "bench": "b",
                      "mode": "m", "timestamp": 1.0})


def test_ingest_emits_trace_event(tmp_path):
    from repro.obs import MemorySink, TraceContext

    sink = MemorySink()
    obs = TraceContext(sink)
    try:
        store = ResultsStore(tmp_path)
        store.ingest(_record(), obs=obs)
    finally:
        obs.close()
    events = [e for e in sink.events if e["event"] == "store.ingest"]
    assert len(events) == 1
    assert events[0]["bench"] == "gzip"
    assert events[0]["shard"].startswith("records-")


# -- durability ----------------------------------------------------------


def test_torn_final_line_skipped_and_counted(tmp_path):
    store = ResultsStore(tmp_path)
    rec = _record()
    store.ingest(rec)
    path = store.shard_path(rec["run_id"])
    with open(path, "a", encoding="utf-8") as fh:
        fh.write('{"run_id": "abc", "truncated')  # killed mid-write
    assert len(store.records()) == 1
    assert store.torn_lines == 1


def test_append_after_crash_starts_fresh_line(tmp_path):
    store = ResultsStore(tmp_path)
    first = _record(ts=1.0)
    store.ingest(first)
    path = store.shard_path(first["run_id"])
    with open(path, "a", encoding="utf-8") as fh:
        fh.write('{"torn":')  # no trailing newline
    # same bench/mode -> same shard; must not fuse with the fragment
    second = _record(ts=2.0)
    store.ingest(second)
    got = store.records()
    assert [r["timestamp"] for r in got] == [1.0, 2.0]
    assert store.torn_lines == 1


# -- retention -----------------------------------------------------------


def test_prune_keeps_newest_per_identity(tmp_path):
    store = ResultsStore(tmp_path)
    for ts in (1.0, 2.0, 3.0):
        store.ingest(_record(ts=ts))  # one identity, three observations
    store.ingest(_record(bench="vpr", ts=1.0))  # different identity

    dry = store.prune(keep=1, dry_run=True)
    assert (dry.examined, dry.removed, dry.kept) == (4, 2, 2)
    assert len(store.records()) == 4  # dry run wrote nothing

    report = store.prune(keep=1)
    assert report.removed == 2
    assert report.by_group == {("run", "gzip", "speculative"): 2}
    kept = store.records()
    assert len(kept) == 2
    gzip_rec = next(r for r in kept if r["bench"] == "gzip")
    assert gzip_rec["timestamp"] == 3.0  # newest survived
    assert "removed 2 of 4" in report.format()


def test_prune_kind_filter_and_validation(tmp_path):
    store = ResultsStore(tmp_path)
    for ts in (1.0, 2.0):
        store.ingest(_record(ts=ts))
        store.ingest(_record(kind="table", ts=ts,
                             metrics={"table": {"text": "t"}}))
    report = store.prune(keep=1, kinds={"table"})
    assert report.removed == 1
    kinds = sorted(r["kind"] for r in store.records())
    assert kinds == ["run", "run", "table"]
    with pytest.raises(StoreError):
        store.prune(keep=0)


# -- queries -------------------------------------------------------------


def _seeded_store(tmp_path) -> ResultsStore:
    store = ResultsStore(tmp_path / "q")
    store.ingest(_record("gzip", "baseline", ts=1.0,
                         metrics=_metrics(cycles=2000)))
    store.ingest(_record("gzip", "speculative", ts=1.0))
    store.ingest(_record("vpr", "speculative", ts=2.0,
                         config={"rounds": 2}))
    store.ingest(_record("gzip", "speculative", ts=3.0,
                         metrics=_metrics(cycles=900)))
    return store


def test_runs_filters(tmp_path):
    store = _seeded_store(tmp_path)
    assert len(runs(store)) == 4
    assert len(runs(store, bench="gzip")) == 3
    assert len(runs(store, mode="baseline")) == 1
    assert len(runs(store, config_key="rounds=2")) == 1
    assert len(runs(store, config_key="rounds=3")) == 0
    assert len(runs(store, since=2.0)) == 2
    newest = runs(store, limit=1)
    assert len(newest) == 1 and newest[0]["timestamp"] == 3.0
    prefix = runs(store, bench="vpr")[0]["run_id"][:6]
    assert len(runs(store, run_id=prefix)) == 1


def test_get_metric_dotted_path():
    rec = _record()
    assert get_metric(rec, "counters.cpu_cycles") == 1000
    assert get_metric(rec, "host.wall_ms") == 12.5
    assert get_metric(rec, "no.such.path") is None


def test_series_orders_observations(tmp_path):
    store = _seeded_store(tmp_path)
    table = series(store, "counters.cpu_cycles", bench="gzip",
                   mode="speculative")
    assert table == {("gzip", "speculative"): [(1.0, 1000), (3.0, 900)]}


def test_resolve_run_prefix_and_ambiguity(tmp_path):
    store = _seeded_store(tmp_path)
    full = runs(store, bench="vpr")[0]["run_id"]
    assert resolve_run(store, full[:8])["run_id"] == full
    # two observations of one id resolve to the newest
    gzip_id = runs(store, bench="gzip", mode="speculative")[0]["run_id"]
    assert resolve_run(store, gzip_id)["timestamp"] == 3.0
    with pytest.raises(StoreError, match="ambiguous|no run record"):
        resolve_run(store, "")
    with pytest.raises(StoreError, match="no run record"):
        resolve_run(store, "zzzz")


def test_latest_matrix_shape(tmp_path):
    store = _seeded_store(tmp_path)
    latest = latest_matrix(store)
    assert set(latest) == {"gzip", "vpr"}
    assert latest["gzip"]["speculative"]["timestamp"] == 3.0
    assert latest["gzip"]["baseline"]["metrics"]["counters"][
        "cpu_cycles"] == 2000


# -- comparison ----------------------------------------------------------


def test_compare_records_sections_and_sites():
    a = _record("gzip", "baseline", metrics=_metrics(cycles=2000),
                sites=[{"site": "p", "line": 3, "allocations": 10,
                        "collisions": 0, "evictions": 1}])
    b = _record("gzip", "speculative",
                sites=[{"site": "p", "line": 3, "allocations": 12,
                        "collisions": 2, "evictions": 1},
                       {"site": "q", "line": 9, "allocations": 4}])
    cmp = compare_records(a, b)
    cycles = next(d for d in cmp.sections["counters"]
                  if d.name == "cpu_cycles")
    assert (cycles.a, cycles.b, cycles.diff) == (2000, 1000, -1000)
    assert cycles.pct == pytest.approx(-50.0)
    assert {"counters", "host", "alat"} <= set(cmp.sections)

    by_site = {s.site: s for s in cmp.sites}
    assert by_site["p"].only_in is None
    assert by_site["q"].only_in == "b"
    alloc = next(d for d in by_site["p"].deltas if d.name == "allocations")
    assert (alloc.a, alloc.b) == (10, 12)
    json.dumps(cmp.as_dict())  # stays JSON-ready for --json


def test_delta_pct_guards_zero_baseline():
    from repro.obs.store.query import Delta

    assert Delta("x", 0, 5).pct is None


# -- history bridge + regress parity -------------------------------------


def _history_rec(bench: str, cycles: int, ts: float, wall: float = 100.0):
    rec = make_history_record(
        bench,
        {"speculative": {"cpu_cycles": cycles, "retired_loads": 50}},
        {"speculative": {"wall_ms": wall, "sim_steps_per_sec": 5e5}},
    )
    rec["timestamp"] = ts
    return rec


def test_history_round_trip(tmp_path):
    store = ResultsStore(tmp_path)
    original = _history_rec("gzip", 1000, ts=10.0)
    append_history_record(store, original)
    (rebuilt,) = store_history(store, "gzip")
    assert rebuilt["bench"] == "gzip"
    assert rebuilt["timestamp"] == 10.0
    assert rebuilt["modes"]["speculative"]["cpu_cycles"] == 1000
    assert rebuilt["modes"]["speculative"]["host"]["wall_ms"] == 100.0


def test_import_history_migrates_jsonl(tmp_path):
    hist_dir = tmp_path / "history"
    jsonl = JsonlHistory(str(hist_dir))
    for ts in (1.0, 2.0):
        jsonl.append(_history_rec("gzip", 1000, ts=ts))
    jsonl.append(_history_rec("vpr", 800, ts=1.5))
    store = ResultsStore(tmp_path / "store")
    assert import_history(store, str(hist_dir)) == 3
    assert [r["timestamp"] for r in store_history(store, "gzip")] == [1.0, 2.0]
    assert import_history(store, str(tmp_path / "missing")) == 0


def test_gate_parity_between_backends(tmp_path):
    """The tentpole's compatibility claim: gating through the store
    produces the same flags as the classic JSONL backend."""
    jsonl = JsonlHistory(str(tmp_path / "history"))
    backed = StoreHistory(str(tmp_path / "store"))
    for backend in (jsonl, backed):
        backend.append(_history_rec("gzip", 1000, ts=1.0))

    current = _history_rec("gzip", 1300, ts=2.0)  # +30% cycles
    reports = [
        gate_records(backend, {"gzip": current}, update=False)
        for backend in (jsonl, backed)
    ]
    for report in reports:
        assert report.failed
        assert [f.counter for f in report.flags] == ["cpu_cycles"]
    assert str(reports[0].flags[0]) == str(reports[1].flags[0])

    clean = _history_rec("gzip", 1010, ts=2.0)
    for backend in (jsonl, backed):
        assert not gate_records(backend, {"gzip": clean},
                                update=False).flags


def test_regress_cli_store_backend_exit_codes(tmp_path, capsys):
    metrics_path = tmp_path / "metrics.json"
    metrics_path.write_text(json.dumps({
        "gzip": {"speculative": {
            "counters": {"cpu_cycles": 1000, "retired_loads": 50},
            "host": {"wall_ms": 100.0, "sim_steps_per_sec": 5e5},
        }},
    }))
    store_dir = str(tmp_path / "store")
    base = ["--metrics", str(metrics_path), "--store", store_dir]
    # no history yet: distinct exit code, then --allow-seed records it
    assert regress_main(base) == EXIT_NO_HISTORY
    assert regress_main(base + ["--allow-seed"]) == 0
    # unchanged numbers gate clean; --prune runs the store retention
    assert regress_main(base + ["--prune", "5"]) == 0
    out = capsys.readouterr().out
    assert "no counters regressed" in out and "prune:" in out

    regressed = json.loads(metrics_path.read_text())
    regressed["gzip"]["speculative"]["counters"]["cpu_cycles"] = 2000
    metrics_path.write_text(json.dumps(regressed))
    assert regress_main(base + ["--no-update"]) == 1
    assert regress_main(base + ["--no-update", "--warn-only"]) == 0


# -- CLI -----------------------------------------------------------------


def _cli_store(tmp_path) -> str:
    store_dir = str(tmp_path / "cli-store")
    store = ResultsStore(store_dir)
    store.ingest(_record("gzip", "baseline", ts=1.0,
                         metrics=_metrics(cycles=2000)))
    store.ingest(_record("gzip", "speculative", ts=1.0,
                         sites=[{"site": "p", "line": 3,
                                 "allocations": 5, "collisions": 1}]))
    return store_dir


def test_cli_list_ascii_and_json(tmp_path, capsys):
    store_dir = _cli_store(tmp_path)
    assert store_main(["--store", store_dir, "list"]) == 0
    text = capsys.readouterr().out
    assert "gzip" in text and "baseline" in text and "speculative" in text
    assert store_main(["--store", store_dir, "list", "--json"]) == 0
    data = json.loads(capsys.readouterr().out)
    assert len(data) == 2 and {r["bench"] for r in data} == {"gzip"}


def test_cli_show_and_compare(tmp_path, capsys):
    store_dir = _cli_store(tmp_path)
    store = ResultsStore(store_dir)
    base_id = runs(store, mode="baseline")[0]["run_id"]
    spec_id = runs(store, mode="speculative")[0]["run_id"]

    assert store_main(["--store", store_dir, "show", base_id[:8]]) == 0
    assert "cpu_cycles" in capsys.readouterr().out

    assert store_main(
        ["--store", store_dir, "compare", base_id[:8], spec_id[:8]]
    ) == 0
    text = capsys.readouterr().out
    assert "counters" in text and "cpu_cycles" in text
    assert "ALAT site" in text  # per-site table rendered

    assert store_main(
        ["--store", store_dir, "compare", base_id[:8], spec_id[:8],
         "--json"]
    ) == 0
    doc = json.loads(capsys.readouterr().out)
    assert doc["a"]["run_id"] == base_id
    assert doc["sites"][0]["site"] == "p"


def test_cli_series_prune_and_errors(tmp_path, capsys):
    store_dir = _cli_store(tmp_path)
    assert store_main(
        ["--store", store_dir, "series", "--metric", "counters.cpu_cycles"]
    ) == 0
    text = capsys.readouterr().out
    assert "series: counters.cpu_cycles" in text
    assert "baseline" in text and "speculative" in text
    assert store_main(["--store", store_dir, "prune", "--keep", "1"]) == 0
    capsys.readouterr()
    # unknown run id is an error (exit 1), not a traceback
    assert store_main(["--store", store_dir, "show", "zzzz"]) == 1
    assert "error:" in capsys.readouterr().err


def test_cli_warns_about_torn_lines(tmp_path, capsys):
    store_dir = _cli_store(tmp_path)
    shards = ResultsStore(store_dir).shard_paths()
    with open(shards[0], "a", encoding="utf-8") as fh:
        fh.write('{"half')
    assert store_main(["--store", store_dir, "list"]) == 0
    assert "torn line(s)" in capsys.readouterr().err


def test_ascii_spark_shape():
    assert len(ascii_spark([1, 2, 3], width=3)) == 3
    assert ascii_spark([], width=5) == ""


def test_format_run_list_empty():
    assert "0 record(s)" in format_run_list([])


# -- dashboard -----------------------------------------------------------


def _matrix_store(tmp_path) -> ResultsStore:
    store = ResultsStore(tmp_path / "dash")
    batch = new_batch_id()
    for i, bench in enumerate(("gzip", "vpr", "mcf")):
        for mode, cycles in (("baseline", 2000 + i), ("speculative", 1500)):
            store.ingest(_record(
                bench, mode, ts=float(i + 1), batch=batch,
                metrics=_metrics(cycles=cycles),
                sites=[{"site": "p", "line": 3, "allocations": 5,
                        "collisions": i, "evictions": 1}],
            ))
    return store


def test_dashboard_is_self_contained(tmp_path):
    html = render_dashboard(_matrix_store(tmp_path))
    assert html.lstrip().startswith("<!DOCTYPE html>")
    for bench in ("gzip", "vpr", "mcf"):
        assert bench in html
    assert "<svg" in html  # sparklines inline
    assert "prefers-color-scheme" in html  # dark mode present
    # self-contained: no external fetches of any kind
    for marker in ("http://", "https://", "<script src", "<link"):
        assert marker not in html, f"external reference: {marker}"


def test_dashboard_sections_present(tmp_path):
    html = render_dashboard(_matrix_store(tmp_path))
    assert "ALAT site pressure" in html
    assert "baseline" in html and "speculative" in html
    assert "cpu" in html.lower()


def test_dashboard_empty_store(tmp_path):
    html = render_dashboard(ResultsStore(tmp_path / "empty"))
    assert "repro.workloads --store" in html  # points at the ingest path


def test_cli_dashboard_writes_file(tmp_path, capsys):
    store = _matrix_store(tmp_path)
    out = tmp_path / "dash.html"
    assert store_main(
        ["--store", str(store.root), "dashboard", "--html", str(out)]
    ) == 0
    assert out.stat().st_size > 1000
    assert "dashboard written" in capsys.readouterr().out


# -- table regeneration --------------------------------------------------


def test_write_tables_from_store(tmp_path):
    from repro.workloads.report import write_tables_from_store

    store = _matrix_store(tmp_path)
    store.ingest(_record(
        "ablation_demo", "text", kind="table", suite="tables", ts=5.0,
        metrics={"table": {"text": "demo table"}},
    ))
    out_dir = str(tmp_path / "results")
    written, stale = write_tables_from_store(store, out_dir)
    assert not stale
    names = {os.path.basename(p) for p in written}
    assert {"figure8_performance.txt", "figure9_load_types.txt",
            "figure10_misspeculation.txt", "figure11_rse.txt",
            "figures.json", "ablation_demo.txt"} == names
    fig8 = open(os.path.join(out_dir, "figure8_performance.txt")).read()
    assert "gzip" in fig8 and "vpr" in fig8 and "mcf" in fig8
    assert open(os.path.join(out_dir, "ablation_demo.txt")).read() == \
        "demo table\n"

    # check mode: clean right after writing, stale after an edit
    _written, stale = write_tables_from_store(store, out_dir, check=True)
    assert stale == []
    with open(os.path.join(out_dir, "figure8_performance.txt"), "a") as fh:
        fh.write("drift\n")
    _written, stale = write_tables_from_store(store, out_dir, check=True)
    assert stale == ["figure8_performance.txt"]


def test_cli_tables_check_exit_code(tmp_path, capsys):
    store = _matrix_store(tmp_path)
    out_dir = str(tmp_path / "results")
    assert store_main(
        ["--store", str(store.root), "tables", "--out", out_dir]
    ) == 0
    capsys.readouterr()
    assert store_main(
        ["--store", str(store.root), "tables", "--out", out_dir, "--check"]
    ) == 0
    capsys.readouterr()
    os.remove(os.path.join(out_dir, "figures.json"))
    assert store_main(
        ["--store", str(store.root), "tables", "--out", out_dir, "--check"]
    ) == 1
    assert "stale derived tables" in capsys.readouterr().err


# -- concurrent writers (advisory per-shard flock) ----------------------


def _stress_writer(root: str, wid: int, n: int) -> None:
    store = ResultsStore(root)
    for i in range(n):
        rec = make_record(
            "gzip", "baseline", metrics={"counters": {"iteration": i}}
        )
        # Pin every record to one shard so all writers contend on the
        # same file — the worst case for interleaved appends.
        rec["run_id"] = f"a{wid:02d}{i:06d}"
        store.ingest(rec)


def test_concurrent_ingest_same_shard_never_tears(tmp_path):
    import multiprocessing

    ctx = multiprocessing.get_context("fork")
    root = str(tmp_path)
    workers, per_worker = 4, 40
    procs = [
        ctx.Process(target=_stress_writer, args=(root, w, per_worker))
        for w in range(workers)
    ]
    for p in procs:
        p.start()
    for p in procs:
        p.join(timeout=60)
    assert all(p.exitcode == 0 for p in procs)

    store = ResultsStore(root)
    records = store.records()
    assert store.torn_lines == 0
    ids = {r["run_id"] for r in records}
    assert len(records) == len(ids) == workers * per_worker
    # One shard took every append (the run_ids force it), and each line
    # parses on its own — no interleaved bytes.
    assert [p.name for p in store.shard_paths()] == ["records-a.jsonl"]
