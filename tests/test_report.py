"""Run reports and host-metric gating.

* ``build_metrics`` / ``format_summary`` round-trip on a real
  compile + simulate, including the ``host`` section;
* golden-file tests for the Chrome trace and collapsed-stack exporters
  (hand-built deterministic spans — regenerate with
  ``REGEN_GOLDEN=1 PYTHONPATH=src python -m pytest tests/test_report.py``);
* ``compare_host_metrics`` band logic: direction, median baseline,
  warn vs fail, and tolerance of pre-telemetry history records.
"""

from __future__ import annotations

import json
import os

import pytest

from repro.obs import HostProfiler, Span, TraceContext, chrome_trace, collapsed_stacks
from repro.obs.regress import (
    Flag,
    compare_host_metrics,
    make_record,
)
from repro.obs.report import build_host_metrics, build_metrics, format_summary
from repro.pipeline import CompilerOptions, OptLevel, SpecMode, compile_source

GOLDEN_DIR = os.path.join(os.path.dirname(__file__), "golden")

PROGRAM = """
int main(int n) {
    int a = 7;
    int *p = &a;
    int s = 0;
    int i = 0;
    while (i < n) {
        *p = i;
        s = s + a;
        i = i + 1;
    }
    return s;
}
"""


# -- metrics round-trip on a real run ------------------------------------


def _real_run():
    obs = TraceContext(track_memory=True)
    try:
        options = CompilerOptions(
            opt_level=OptLevel.O3, spec_mode=SpecMode.HEURISTIC, fallback=False
        )
        output = compile_source(PROGRAM, options, obs=obs)
        host = HostProfiler()
        result = output.run([80], host_profiler=host)
    finally:
        obs.close()
    return output, result, obs, host


def test_build_metrics_has_host_section():
    output, result, obs, host = _real_run()
    metrics = build_metrics(output, result, obs, host=host)
    assert metrics["counters"]["instructions"] > 0
    assert "phase_wall_ms" in metrics and "phase_mem_kb" in metrics
    h = metrics["host"]
    assert h["wall_ms"] > 0
    assert h["simulate_wall_ms"] > 0
    assert h["sim_steps_per_sec"] > 0
    assert h["peak_kb"] > 0
    assert h["profile"]["total_ms"] > 0
    assert any(k.startswith("sim.op.") for k in h["profile"]["buckets"])
    json.dumps(metrics)  # the whole dict stays JSON-ready


def test_format_summary_renders_host_line():
    output, result, obs, host = _real_run()
    text = format_summary(build_metrics(output, result, obs, host=host))
    assert "-- host" in text
    assert "steps/s=" in text
    assert "peak " in text  # per-phase KiB column
    assert "profiled" in text and "buckets" in text


def test_build_host_metrics_without_anything():
    assert build_host_metrics(None, None) == {}
    assert build_host_metrics(None, TraceContext()) == {}


# -- exporter golden files -----------------------------------------------


def _synthetic_obs() -> TraceContext:
    obs = TraceContext(record_spans=False)  # keep it inert; we fill spans
    obs.spans = [
        Span(1, None, "frontend", 0.0, wall_ms=2.0),
        Span(3, 2, "pre.fn", 2.5, wall_ms=2.0, fields={"function": "main"}),
        Span(2, None, "pre", 2.0, wall_ms=3.0, child_wall_ms=2.0),
        Span(
            4, None, "simulate", 5.0, wall_ms=10.0, mem_kb=12.5,
            child_wall_ms=0.0,
        ),
    ]
    return obs


def _synthetic_host() -> HostProfiler:
    hp = HostProfiler()
    hp.add("sim.issue", 4_000_000, count=100)
    hp.add("sim.op.Ld", 2_000_000, count=50)
    hp.add("sim.cache", 1_000_000, count=25)
    return hp


def _check_golden(name: str, text: str) -> None:
    path = os.path.join(GOLDEN_DIR, name)
    if os.environ.get("REGEN_GOLDEN"):
        os.makedirs(GOLDEN_DIR, exist_ok=True)
        with open(path, "w", encoding="utf-8") as fh:
            fh.write(text)
    with open(path, "r", encoding="utf-8") as fh:
        assert text == fh.read(), f"golden mismatch: {name}"


def test_chrome_trace_golden():
    doc = chrome_trace(_synthetic_obs(), _synthetic_host())
    _check_golden(
        "chrome_trace.json",
        json.dumps(doc, indent=2, sort_keys=True) + "\n",
    )


def test_flamegraph_golden():
    lines = collapsed_stacks(_synthetic_obs(), _synthetic_host())
    _check_golden("flamegraph.txt", "\n".join(lines) + "\n")


def test_synthetic_flamegraph_accounting():
    lines = collapsed_stacks(_synthetic_obs(), _synthetic_host())
    values = {ln.rsplit(" ", 1)[0]: int(ln.rsplit(" ", 1)[1]) for ln in lines}
    # host total is 7 ms; simulate self (10 ms) shrinks to 3 ms
    assert values["simulate"] == 3000
    assert values["simulate;sim.issue"] == 4000
    assert values["pre;pre.fn"] == 2000
    assert values["pre"] == 1000  # 3 ms wall minus 2 ms child


# -- workload report tables (golden) --------------------------------------


def _stored_matrix_results():
    """Two benches of fixed counters/host numbers rendered through the
    store's :class:`StoredMode` path — deterministic inputs, so the
    figure and matrix renderers can be golden-tested byte-for-byte."""
    from repro.obs.store import make_record
    from repro.workloads.report import benchmark_results_from_records

    def counters(cycles, data, loads, indirect, checks, failures):
        return {
            "cpu_cycles": cycles,
            "data_access_cycles": data,
            "retired_loads": loads,
            "retired_indirect_loads": indirect,
            "check_instructions": checks,
            "check_failures": failures,
            "recovery_cycles": failures * 25,
            "rse_cycles": 6 if checks else 4,
        }

    fixtures = {
        "gzip": (
            counters(10_000, 3_000, 1_000, 400, 0, 0),
            counters(9_200, 2_500, 860, 340, 40, 2),
        ),
        "vortex": (
            counters(20_000, 8_000, 2_500, 900, 0, 0),
            counters(18_500, 6_600, 2_100, 760, 120, 0),
        ),
    }
    latest = {}
    for bench, (base, spec) in fixtures.items():
        latest[bench] = {}
        for mode, ctr, wall, steps in (
            ("baseline", base, 120.0, 480_000.0),
            ("speculative", spec, 110.5, 520_000.0),
        ):
            latest[bench][mode] = make_record(
                bench, mode,
                {"counters": ctr,
                 "host": {"wall_ms": wall, "simulate_wall_ms": wall - 20.0,
                          "sim_steps_per_sec": steps}},
                suite="matrix", timestamp=1.0, git_rev=None,
            )
    return benchmark_results_from_records(latest)


@pytest.mark.parametrize(
    "golden_name, renderer_name",
    [
        ("figure8_table.txt", "figure8_table"),
        ("figure9_table.txt", "figure9_table"),
        ("figure10_table.txt", "figure10_table"),
        ("figure11_table.txt", "figure11_table"),
        ("matrix_table.txt", "matrix_table"),
        ("host_metrics_table.txt", "host_metrics_table"),
    ],
)
def test_report_table_golden(golden_name, renderer_name):
    from repro.workloads import report

    renderer = getattr(report, renderer_name)
    _check_golden(golden_name, renderer(_stored_matrix_results()) + "\n")


def test_figures_as_dict_golden():
    from repro.workloads.report import figures_as_dict

    doc = figures_as_dict(_stored_matrix_results())
    _check_golden(
        "figures_dict.json",
        json.dumps(doc, indent=2, sort_keys=True) + "\n",
    )


def test_stored_mode_reconstructs_derived_ratios():
    """The stored view must rebuild the two derived counter properties
    the figure tables lean on (they are @property on Counters, not
    persisted fields)."""
    results = _stored_matrix_results()
    spec = results["gzip"].speculative
    assert spec.counters.misspeculation_ratio == pytest.approx(2 / 40)
    assert spec.counters.checks_per_load == pytest.approx(40 / (860 + 40))
    assert spec.retired_direct_loads == 860 - 340


# -- host-metric gating --------------------------------------------------


def _rec(bench: str, wall: float, steps: float) -> dict:
    return {
        "bench": bench,
        "modes": {
            "speculative": {
                "cpu_cycles": 100,
                "host": {"wall_ms": wall, "sim_steps_per_sec": steps},
            }
        },
    }


def test_host_gate_quiet_inside_bands():
    history = [_rec("gzip", 100.0, 500_000.0)]
    current = _rec("gzip", 140.0, 400_000.0)  # +40% wall, -20% steps
    assert compare_host_metrics(history, current) == []


def test_host_gate_warn_then_fail_wall():
    history = [_rec("gzip", 100.0, 500_000.0)]
    warn = compare_host_metrics(history, _rec("gzip", 180.0, 500_000.0))
    assert [f.severity for f in warn] == ["warn"]
    assert warn[0].counter == "wall_ms"
    fail = compare_host_metrics(history, _rec("gzip", 350.0, 500_000.0))
    assert [f.severity for f in fail] == ["fail"]
    assert "+250.0%" in str(fail[0])


def test_host_gate_throughput_direction():
    history = [_rec("gzip", 100.0, 600_000.0)]
    # throughput *up* is never a regression, even by a lot
    assert compare_host_metrics(
        history, _rec("gzip", 100.0, 2_000_000.0)
    ) == []
    # 50% drop warns (past 0.33), 80% drop fails (past 0.67)
    warn = compare_host_metrics(history, _rec("gzip", 100.0, 300_000.0))
    assert [(f.counter, f.severity) for f in warn] == [
        ("sim_steps_per_sec", "warn")
    ]
    fail = compare_host_metrics(history, _rec("gzip", 100.0, 120_000.0))
    assert [f.severity for f in fail] == ["fail"]


def test_host_gate_median_baseline_resists_outlier():
    # one slow outlier in the window must not drag the baseline up
    history = [
        _rec("gzip", 100.0, 500_000.0),
        _rec("gzip", 400.0, 100_000.0),  # noisy neighbour run
        _rec("gzip", 110.0, 480_000.0),
    ]
    # median wall = 110, median steps = 480k: a 120 ms run is fine
    assert compare_host_metrics(history, _rec("gzip", 120.0, 450_000.0)) == []
    # and the fail band is judged against the median, not the outlier
    flags = compare_host_metrics(history, _rec("gzip", 360.0, 450_000.0))
    assert [f.severity for f in flags] == ["fail"]
    assert flags[0].previous == 110.0


def test_host_gate_ignores_pre_telemetry_history():
    legacy = {"bench": "gzip", "modes": {"speculative": {"cpu_cycles": 90}}}
    current = _rec("gzip", 500.0, 10_000.0)
    assert compare_host_metrics([legacy], current) == []
    # mixed history: only records with host data feed the median
    flags = compare_host_metrics(
        [legacy, _rec("gzip", 100.0, 500_000.0)], current
    )
    assert {f.severity for f in flags} == {"fail"}
    assert {f.counter for f in flags} == {"wall_ms", "sim_steps_per_sec"}


def test_make_record_embeds_host_subset():
    rec = make_record(
        "gzip",
        {"speculative": {"cpu_cycles": 10, "instructions": 5}},
        {
            "speculative": {
                "wall_ms": 12.5,
                "sim_steps_per_sec": 1000.0,
                "simulate_wall_ms": 9.0,  # not tracked -> dropped
                "profile": {"total_ms": 9.0},  # never persisted
            }
        },
    )
    host = rec["modes"]["speculative"]["host"]
    assert host == {"wall_ms": 12.5, "sim_steps_per_sec": 1000.0}
    json.dumps(rec)


def test_flag_str_signs():
    up = Flag("b", "m", "wall_ms", 100.0, 180.0, "warn")
    assert "(+80.0%)" in str(up)
    down = Flag("b", "m", "sim_steps_per_sec", 500.0, 250.0, "fail")
    assert "(-50.0%)" in str(down)
    assert str(down).startswith("REGRESSION")
