"""repro.service: retry schedule, artifact cache, pool fault tolerance.

The retry/backoff tests run against a fake clock and a seeded RNG (no
sleeps); the pool tests use ``probe`` jobs — deterministic
misbehaviour on demand (transient failures, permanent taxonomy errors,
hangs, worker suicide) — so every failure-routing path is exercised
with real forked processes in well under a second each.
"""

from __future__ import annotations

import json
import random

import pytest

from repro.service import (
    COMPLETED,
    FAILED,
    TIMEOUT,
    ArtifactCache,
    JobPool,
    JobSpec,
    RetryPolicy,
    RetryState,
    ServiceError,
    artifact_sha,
    cache_key,
    options_from_dict,
    options_to_dict,
)

# -- retry schedule (fake clock, seeded RNG) ----------------------------


def test_backoff_sequence_without_jitter():
    policy = RetryPolicy(
        max_attempts=5, base_delay=0.1, factor=2.0, max_delay=0.5,
        jitter=0.0,
    )
    rng = random.Random(0)
    delays = [policy.backoff(k, rng) for k in (1, 2, 3, 4)]
    assert delays == pytest.approx([0.1, 0.2, 0.4, 0.5])  # capped at max


def test_backoff_jitter_stays_within_bounds():
    policy = RetryPolicy(base_delay=1.0, factor=1.0, jitter=0.1)
    rng = random.Random(42)
    delays = [policy.backoff(1, rng) for _ in range(200)]
    assert all(0.9 <= d <= 1.1 for d in delays)
    # ... and actually spreads (no lockstep retries)
    assert max(delays) > 1.05
    assert min(delays) < 0.95


def test_retry_state_attempt_times_and_give_up():
    policy = RetryPolicy(
        max_attempts=3, base_delay=0.1, factor=2.0, jitter=0.0
    )
    state = RetryState(policy, random.Random(0))
    t1 = state.record_failure(100.0)
    assert t1 == pytest.approx(100.1)
    assert state.attempts == 1 and not state.exhausted
    t2 = state.record_failure(t1)
    assert t2 == pytest.approx(100.1 + 0.2)
    # Third failed execution exhausts a 3-attempt budget.
    assert state.record_failure(t2) is None
    assert state.exhausted


def test_timeout_terminal_when_policy_says_so():
    state = RetryState(
        RetryPolicy(max_attempts=3, retry_timeouts=False), random.Random(0)
    )
    assert state.record_failure(0.0, timeout=True) is None
    state = RetryState(
        RetryPolicy(max_attempts=3, base_delay=0.0, jitter=0.0),
        random.Random(0),
    )
    assert state.record_failure(7.0, timeout=True) == pytest.approx(7.0)


# -- artifact cache ------------------------------------------------------

ART = {"counters": {"cpu_cycles": 123}, "output": ["5"], "exit_value": 4}


def test_cache_round_trip(tmp_path):
    cache = ArtifactCache(tmp_path)
    key = cache_key("probe", {"x": 1})
    assert cache.get(key) is None
    sha = cache.put(key, ART)
    assert cache.get(key) == ART
    assert sha == artifact_sha(ART)
    assert cache.stats.hits == 1
    assert cache.stats.misses == 1
    assert cache.stats.stores == 1


def test_cache_corrupt_entry_quarantined_then_recomputed(tmp_path):
    cache = ArtifactCache(tmp_path)
    key = cache_key("probe", {"x": 2})
    cache.put(key, ART)
    path = cache.entry_path(key)
    raw = path.read_bytes()
    i = raw.index(b'"artifact"') + 12
    path.write_bytes(raw[:i] + bytes([raw[i] ^ 0xFF]) + raw[i + 1:])
    # The defect is never served: quarantined and reported as a miss.
    assert cache.get(key) is None
    assert cache.stats.quarantined == 1
    assert not path.exists()
    assert list(cache.quarantine_dir.iterdir())
    # Recompute-and-store makes the key serviceable again.
    cache.put(key, ART)
    assert cache.get(key) == ART


def test_cache_stale_pipeline_version_deleted_quietly(tmp_path):
    cache = ArtifactCache(tmp_path)
    key = cache_key("probe", {"x": 3})
    cache.put(key, ART)
    path = cache.entry_path(key)
    entry = json.loads(path.read_text())
    entry["pipeline_version"] = "pre-history"
    path.write_text(json.dumps(entry))
    assert cache.get(key) is None
    assert cache.stats.stale == 1
    assert cache.stats.quarantined == 0  # staleness is not corruption
    assert not path.exists()


def test_cache_entry_under_wrong_key_quarantined(tmp_path):
    cache = ArtifactCache(tmp_path)
    key_a = cache_key("probe", {"x": 4})
    key_b = cache_key("probe", {"x": 5})
    cache.put(key_a, ART)
    dest = cache.entry_path(key_b)
    dest.parent.mkdir(parents=True, exist_ok=True)
    dest.write_bytes(cache.entry_path(key_a).read_bytes())
    assert cache.get(key_b) is None
    assert cache.stats.quarantined == 1


def test_cache_key_ignores_volatile_payload_keys():
    base = cache_key("bench", {"bench": "gzip"})
    assert cache_key("bench", {"bench": "gzip", "store": "/tmp/s"}) == base
    assert cache_key("bench", {"bench": "vpr"}) != base
    assert cache_key("compile", {"bench": "gzip"}) != base


# -- options serialisation ----------------------------------------------


def test_options_round_trip_preserves_identity():
    from repro.workloads.runner import SPECULATIVE

    opts = SPECULATIVE()
    d = options_to_dict(opts)
    back = options_from_dict(d)
    assert options_to_dict(back) == d
    assert back.describe() == opts.describe()


def test_options_unknown_key_rejected():
    with pytest.raises(ServiceError):
        options_from_dict({"no_such_option": 1})


# -- the pool under misbehaving jobs ------------------------------------


def probe(label: str, timeout_s: float = 30.0, **payload) -> JobSpec:
    return JobSpec(
        kind="probe", payload=payload, label=label, timeout_s=timeout_s
    )


def test_pool_routes_every_outcome_and_balances_ledger():
    policy = RetryPolicy(
        max_attempts=3, base_delay=0.01, jitter=0.0, retry_timeouts=False
    )
    with JobPool(jobs=2, retry_policy=policy, crash_budget=8) as pool:
        ids = {
            "ok": pool.submit(probe("ok", value=7)),
            "flaky": pool.submit(probe("flaky", fail_attempts=1, value=1)),
            "permanent": pool.submit(probe("permanent", error="source")),
            "crash": pool.submit(probe("crash", die=True)),
            "hang": pool.submit(
                probe("hang", hang_ms=60000, timeout_s=0.3)
            ),
        }
        pool.drain()
    res = pool.results

    ok = res[ids["ok"]]
    assert ok.state == COMPLETED and ok.artifact == {"value": 7}
    assert ok.attempts == 1 and not ok.from_cache

    flaky = res[ids["flaky"]]
    assert flaky.state == COMPLETED and flaky.attempts == 2

    perm = res[ids["permanent"]]
    assert perm.state == FAILED and perm.attempts == 1  # never retried
    assert perm.error.type == "SourceError"
    assert perm.error.loc  # taxonomy location survives the pipe

    crash = res[ids["crash"]]
    assert crash.state == FAILED
    assert crash.error.type == "WorkerCrashed"

    hang = res[ids["hang"]]
    assert hang.state == TIMEOUT
    assert hang.error.type == "Timeout"

    led = pool.ledger
    assert led.balanced()
    assert led.submitted == 5
    assert led.completed == 2 and led.failed == 2 and led.timed_out == 1
    assert led.worker_crashes >= 3  # the crasher burns its attempts
    assert led.workers_respawned >= 3


def test_pool_timeout_consumes_retry_budget_when_retryable():
    policy = RetryPolicy(
        max_attempts=2, base_delay=0.01, jitter=0.0, retry_timeouts=True
    )
    with JobPool(jobs=1, retry_policy=policy) as pool:
        jid = pool.submit(probe("hang", hang_ms=60000, timeout_s=0.2))
        pool.drain()
    result = pool.results[jid]
    assert result.state == TIMEOUT
    assert result.attempts == 2  # retried once, then gave up
    assert pool.ledger.retries == 1
    assert pool.ledger.timeout_attempts == 2


def test_pool_rejects_zero_workers():
    with pytest.raises(ServiceError):
        JobPool(jobs=0)


SIMPLE = """
int g;
int main(int n) {
    g = n;
    print(g + 1);
    return g;
}
"""


def compile_spec() -> JobSpec:
    from repro import CompilerOptions

    return JobSpec(
        kind="compile",
        payload={
            "source": SIMPLE,
            "options": options_to_dict(CompilerOptions()),
            "args": [4],
            "name": "simple",
        },
        label="compile:simple",
    )


def test_pool_compile_cold_then_verified_warm_hit(tmp_path):
    cache = ArtifactCache(tmp_path)
    with JobPool(jobs=1, cache=cache) as pool:
        jid = pool.submit(compile_spec())
        pool.drain()
        cold = pool.results[jid]
    assert cold.state == COMPLETED and not cold.from_cache
    assert cold.artifact["output"] == ["5"]
    assert cold.artifact["exit_value"] == 4
    assert cache.stats.misses == 1 and cache.stats.stores == 1

    warm_cache = ArtifactCache(tmp_path)
    with JobPool(jobs=1, cache=warm_cache) as pool:
        jid = pool.submit(compile_spec())
        pool.drain()
        warm = pool.results[jid]
    assert warm.state == COMPLETED and warm.from_cache
    assert warm.artifact == cold.artifact
    assert warm.artifact_sha == cold.artifact_sha
    assert warm_cache.stats.hits == 1 and warm_cache.stats.misses == 0
    # Host wall times ride outside the hashed artifact: a cache hit has
    # no host block, so it can never leak one run's timings as another's.
    assert cold.extra.get("host") and not warm.extra


# -- service matrix client ----------------------------------------------


def test_matrix_fuel_exhaustion_is_structured_timeout_failure(tmp_path):
    from repro.service.matrix import run_matrix

    outcome = run_matrix(jobs=1, benchmarks=["gzip"], fuel=200)
    assert outcome.results == {}
    assert len(outcome.failures) == 1
    failure = outcome.failures[0]
    assert failure.name == "gzip"
    assert failure.kind == "timeout"
    assert outcome.ledger.balanced()


# -- service-level chaos -------------------------------------------------


def test_service_chaos_self_test_small(tmp_path):
    from repro.chaos.service import ServiceFaultPlan, run_service_self_test

    report = run_service_self_test(
        jobs=2,
        benchmarks=["gzip", "vortex"],
        plan=ServiceFaultPlan(kills=1, hangs=0, corrupt=1),
        cache_dir=str(tmp_path / "cache"),
    )
    assert report.corrupted == 1
    assert report.quarantined == 1
    assert report.warm_ledger["cache_hits"] == 2
    assert report.warm_ledger["cache_misses"] == 0


def test_campaign_service_matches_sequential():
    from repro.chaos.campaign import run_campaign
    from repro.chaos.service import run_campaign_service

    seq = run_campaign(seed=5, runs=3, failures_dir=None)
    svc = run_campaign_service(seed=5, runs=3, jobs=2, failures_dir=None)
    assert svc.programs == seq.programs == 3
    assert svc.runs == seq.runs
    assert svc.skipped == seq.skipped
    assert svc.faults_injected == seq.faults_injected
    assert not seq.failures and not svc.failures
