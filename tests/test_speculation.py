"""Speculation package units: profiles, deciders, heuristics,
speculative-op counting."""

import pytest

from repro.alias import AliasManager
from repro.ir.stmt import Store
from repro.minic import compile_to_ir
from repro.speculation import count_speculative_ops
from repro.speculation.heuristics import HeuristicConfig, make_heuristic_decider
from repro.speculation.profile import (
    AliasProfile,
    collect_alias_profile,
    make_profile_decider,
    object_key,
)
from repro.ssa import build_hssa

TWO_TARGET = """
int a; int b;
int *p;
int main(int n) {
    if (n > 0) { p = &a; } else { p = &b; }
    *p = 5;
    print(a + b);
    return 0;
}
"""


def the_store(module):
    return next(s for s in module.main.iter_stmts() if isinstance(s, Store))


# -- profiling ---------------------------------------------------------------


def test_profile_records_actual_target_only():
    module = compile_to_ir(TWO_TARGET)
    profile, result = collect_alias_profile(module, [1])  # p -> a
    store = the_store(module)
    observed = profile.store_targets[store.sid]
    am = AliasManager(module)
    a_obj = am.object_of_var(module.find_global("a"))
    b_obj = am.object_of_var(module.find_global("b"))
    assert object_key(a_obj) in observed
    assert object_key(b_obj) not in observed
    assert profile.store_counts[store.sid] == 1


def test_profile_counts_accumulate_per_execution():
    src = """
    int a;
    int *p;
    int main(int n) {
        p = &a;
        for (int i = 0; i < n; i += 1) { *p = i; }
        return a;
    }
    """
    module = compile_to_ir(src)
    profile, _ = collect_alias_profile(module, [7])
    assert profile.total_dynamic_stores == 7


def test_profile_merge_unions_targets():
    module = compile_to_ir(TWO_TARGET)
    p1, _ = collect_alias_profile(module, [1])    # p -> a
    p2, _ = collect_alias_profile(module, [-1])   # p -> b
    p1.merge(p2)
    store = the_store(module)
    assert len(p1.store_targets[store.sid]) == 2
    assert p1.store_counts[store.sid] == 2


def test_profile_load_targets_recorded():
    src = """
    int a;
    int *p;
    int main() { p = &a; a = 4; return *p; }
    """
    module = compile_to_ir(src)
    profile, _ = collect_alias_profile(module, [])
    assert profile.total_dynamic_loads == 1
    (targets,) = profile.load_targets.values()
    assert len(targets) == 1


# -- profile decider ------------------------------------------------------------


def test_decider_mechanisms():
    module = compile_to_ir(TWO_TARGET)
    profile, _ = collect_alias_profile(module, [1])  # p -> a observed
    decider = make_profile_decider(profile)
    am = AliasManager(module)
    store = the_store(module)
    a_obj = am.object_of_var(module.find_global("a"))
    b_obj = am.object_of_var(module.find_global("b"))
    assert decider(store, a_obj) == "soft"   # observed: software repair
    assert decider(store, b_obj) == "alat"   # clean: hardware check


def test_decider_unexecuted_store_fully_speculative():
    src = """
    int a;
    int *p;
    int main(int n) {
        p = &a;
        if (n > 1000) { *p = 1; }   // never executed in training
        return a;
    }
    """
    module = compile_to_ir(src)
    profile, _ = collect_alias_profile(module, [1])
    decider = make_profile_decider(profile)
    am = AliasManager(module)
    store = the_store(module)
    a_obj = am.object_of_var(module.find_global("a"))
    assert decider(store, a_obj) == "alat"


def test_decider_ignores_calls():
    src = """
    int g;
    void w() { g = 1; }
    int main() { w(); return g; }
    """
    module = compile_to_ir(src)
    profile, _ = collect_alias_profile(module, [])
    decider = make_profile_decider(profile)
    am = AliasManager(module)
    from repro.ir.stmt import Call

    call = next(s for s in module.main.iter_stmts() if isinstance(s, Call))
    g_obj = am.object_of_var(module.find_global("g"))
    assert not decider(call, g_obj)


# -- heuristics ----------------------------------------------------------------


def test_heuristic_single_target_is_soft():
    src = """
    int a;
    int *p;
    int main() { p = &a; *p = 1; return a; }
    """
    module = compile_to_ir(src)
    am = AliasManager(module)
    decider = make_heuristic_decider(am)
    store = the_store(module)
    a_obj = am.object_of_var(module.find_global("a"))
    assert decider(store, a_obj) == "soft"


def test_heuristic_fanout_rule():
    module = compile_to_ir(TWO_TARGET)
    am = AliasManager(module)
    decider = make_heuristic_decider(am, HeuristicConfig(fanout_threshold=2))
    store = the_store(module)
    a_obj = am.object_of_var(module.find_global("a"))
    assert decider(store, a_obj) == "alat"
    strict = make_heuristic_decider(am, HeuristicConfig(fanout_threshold=5, heap_mixing=False))
    assert strict(store, a_obj) == "soft"


def test_heuristic_heap_objects_stay_soft():
    src = """
    int g;
    int *p;
    int main(int n) {
        int *h = alloc(int, 4);
        if (n == -1) { p = &g; } else { p = h; }
        *p = 3;
        return g;
    }
    """
    module = compile_to_ir(src)
    am = AliasManager(module)
    decider = make_heuristic_decider(am)
    store = the_store(module)
    targets = am.access_targets(store.addr, store.value.type)
    heap_obj = next(t for t in targets if str(t).startswith("heap@"))
    named = next(t for t in targets if not str(t).startswith("heap@"))
    assert decider(store, heap_obj) == "soft"
    assert decider(store, named) == "alat"  # heap-mixing rule


# -- speculative-op summaries -----------------------------------------------------


def test_count_speculative_ops():
    module = compile_to_ir(TWO_TARGET)
    profile, _ = collect_alias_profile(module, [1])
    am = AliasManager(module)
    build_hssa(module.main, module, am, spec_decider=make_profile_decider(profile))
    summary = count_speculative_ops(module.main)
    assert summary.chis > 0
    assert 0 < summary.speculative_chis <= summary.chis
    assert summary.speculative_sites
    assert 0 < summary.chi_speculation_ratio <= 1.0


def test_count_without_decider_is_all_real():
    module = compile_to_ir(TWO_TARGET)
    am = AliasManager(module)
    build_hssa(module.main, module, am)
    summary = count_speculative_ops(module.main)
    assert summary.speculative_chis == 0
    assert summary.chi_speculation_ratio == 0.0
