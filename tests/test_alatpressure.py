"""Static ALAT pressure & profitability analysis
(`repro.analysis.dataflow` + `repro.analysis.alatpressure`).

The load-bearing properties: the generic worklist solver reaches a
fixpoint (and trips its divergence tripwire instead of hanging), the
armed/needed live ranges span exactly from the leading advanced load to
the last check, set conflicts are predicted from the same
register-to-set mapping codegen uses, the promotion gate demotes
unprofitable candidates without changing program output, and the whole
model stays within the documented tolerance of the simulator's
ALATStats.
"""

import pytest

from repro.analysis import dataflow
from repro.analysis.alatpressure import (
    CandidateReport,
    P_CONFLICT_VICTIM,
    _FunctionAnalysis,
    analyze_function_pressure,
    analyze_module_pressure,
    armed_by_stmt,
)
from repro.ir import INT, ModuleBuilder
from repro.ir.stmt import Assign, SpecFlag
from repro.machine.alat import ALATConfig, set_index_for_register
from repro.pipeline import PromotionGate, compile_source
from repro.target.isa import Ld, LoadKind
from repro.workloads.programs import get_workload
from repro.workloads.runner import SPECULATIVE


# -- builders ----------------------------------------------------------


def loop_cfg_fn():
    """Plain counting loop (no speculation) for solver tests."""
    mb = ModuleBuilder("m")
    fb = mb.function("main", [("n", INT)], INT)
    n = fb.fn.params[0]
    i = fb.temp(INT, "i")
    fb.assign(i, 0)
    head = fb.block("head")
    body = fb.block("body")
    exit_ = fb.block("exit")
    fb.jump(head)
    fb.set_block(head)
    fb.branch(fb.lt(i, n), body, exit_)
    fb.set_block(body)
    fb.assign(i, fb.add(i, 1))
    fb.jump(head)
    fb.set_block(exit_)
    fb.ret(fb.read(i))
    fb.finish()
    mb.finish()
    fb.fn.compute_preds()
    return fb.fn


def straightline_spec_fn():
    """arm t1; arm t2; check t1 (clearing); check t2 (clearing)."""
    mb = ModuleBuilder("m")
    g = mb.global_var("g", INT, init=1)
    h = mb.global_var("h", INT, init=2)
    fb = mb.function("main", [], INT)
    t1 = fb.temp(INT, "t1")
    t2 = fb.temp(INT, "t2")
    stmts = [
        (fb.assign(t1, fb.load(fb.addr(g))), SpecFlag.LD_A),
        (fb.assign(t2, fb.load(fb.addr(h))), SpecFlag.LD_A),
        (fb.assign(t1, fb.load(fb.addr(g))), SpecFlag.LD_C),
        (fb.assign(t2, fb.load(fb.addr(h))), SpecFlag.LD_C),
    ]
    for stmt, flag in stmts:
        stmt.spec_flag = flag
    fb.ret(fb.add(fb.read(t1), fb.read(t2)))
    fb.finish()
    mb.finish()
    fb.fn.compute_preds()
    return fb.fn, t1, t2, [s for s, _ in stmts]


def loop_spec_fn():
    """Entry arms t, the loop body checks it with the keep completer."""
    mb = ModuleBuilder("m")
    g = mb.global_var("g", INT, init=1)
    fb = mb.function("main", [("n", INT)], INT)
    n = fb.fn.params[0]
    t = fb.temp(INT, "t")
    i = fb.temp(INT, "i")
    arm = fb.assign(t, fb.load(fb.addr(g)))
    arm.spec_flag = SpecFlag.LD_A
    fb.assign(i, 0)
    head = fb.block("head")
    body = fb.block("body")
    exit_ = fb.block("exit")
    fb.jump(head)
    fb.set_block(head)
    fb.branch(fb.lt(i, n), body, exit_)
    fb.set_block(body)
    chk = fb.assign(t, fb.load(fb.addr(g)))
    chk.spec_flag = SpecFlag.LD_C_NC
    fb.assign(i, fb.add(fb.read(i), fb.read(t)))
    fb.jump(head)
    fb.set_block(exit_)
    fb.ret(fb.read(i))
    fb.finish()
    mb.finish()
    fb.fn.compute_preds()
    return fb.fn, t, head, body, chk


def cascade_spec_fn():
    """Address temp pa feeds the value temp pv's reload address."""
    from repro.ir.types import PointerType

    mb = ModuleBuilder("m")
    p = mb.global_var("p", PointerType(INT), init=None)
    fb = mb.function("main", [], INT)
    pa = fb.temp(PointerType(INT), "pa")
    pv = fb.temp(INT, "pv")
    arm_a = fb.assign(pa, fb.load(fb.addr(p)))
    arm_a.spec_flag = SpecFlag.LD_A
    arm_v = fb.assign(pv, fb.load(fb.read(pa)))
    arm_v.spec_flag = SpecFlag.LD_SA
    chk_v = fb.assign(pv, fb.load(fb.read(pa)))
    chk_v.spec_flag = SpecFlag.CHK_A_NC
    fb.ret(fb.read(pv))
    fb.finish()
    mb.finish()
    fb.fn.compute_preds()
    return fb.fn, pa, pv


# -- the generic solver ------------------------------------------------


def test_solver_reaches_fixpoint_and_is_deterministic():
    fn = loop_cfg_fn()
    gen = {b.bid: frozenset({b.bid}) for b in fn.blocks}
    kill = {}
    first = dataflow.solve(
        fn, dataflow.FORWARD, dataflow.gen_kill_transfer(gen, kill)
    )
    second = dataflow.solve(
        fn, dataflow.FORWARD, dataflow.gen_kill_transfer(gen, kill)
    )
    assert first.in_facts == second.in_facts
    assert first.out_facts == second.out_facts
    # the fixpoint actually is one: re-applying the transfer at the met
    # inputs reproduces every solved output
    transfer = dataflow.gen_kill_transfer(gen, kill)
    for block in fn.reachable_blocks():
        assert transfer(block, first.entry(block)) == first.exit(block)


def test_solver_forward_facts_accumulate_through_loop():
    fn = loop_cfg_fn()
    gen = {b.bid: frozenset({b.label}) for b in fn.blocks}
    result = dataflow.solve(
        fn, dataflow.FORWARD, dataflow.gen_kill_transfer(gen, {})
    )
    exit_block = next(b for b in fn.blocks if b.label.startswith("exit"))
    # everything generated on some path to exit reaches it (union meet)
    assert any(lbl.startswith("body") for lbl in result.entry(exit_block))


def test_solver_intersect_meet_is_must_analysis():
    fn = loop_cfg_fn()
    gen = {fn.entry.bid: frozenset({"e"})}
    body = next(b for b in fn.blocks if b.label.startswith("body"))
    gen[body.bid] = frozenset({"b"})
    result = dataflow.solve(
        fn,
        dataflow.FORWARD,
        dataflow.gen_kill_transfer(gen, {}),
        meet="intersect",
    )
    exit_block = next(b for b in fn.blocks if b.label.startswith("exit"))
    # "e" flows down every path; "b" only through the loop body
    assert "e" in result.entry(exit_block)
    assert "b" not in result.entry(exit_block)


def test_solver_divergence_tripwire():
    fn = loop_cfg_fn()
    tick = [0]

    def nonmonotone(block, facts):
        tick[0] += 1
        return frozenset({tick[0]})

    with pytest.raises(dataflow.DataflowDivergence):
        dataflow.solve(fn, dataflow.FORWARD, nonmonotone, max_visits=16)


def test_solver_rejects_bad_direction_and_meet():
    fn = loop_cfg_fn()
    transfer = dataflow.gen_kill_transfer({}, {})
    with pytest.raises(ValueError):
        dataflow.solve(fn, "sideways", transfer)
    with pytest.raises(ValueError):
        dataflow.solve(fn, dataflow.FORWARD, transfer, meet="xor")


# -- live-range extents ------------------------------------------------


def test_straightline_live_range_extents():
    fn, t1, t2, stmts = straightline_spec_fn()
    fa = _FunctionAnalysis(fn, ALATConfig())
    fa._solve_ranges()
    (block,) = fn.reachable_blocks()
    live = {s.sid: lv for s, lv in zip(block.stmts, fa.live_after(block))}
    arm1, arm2, chk1, chk2 = stmts
    assert live[arm1.sid] == {t1.id}
    assert live[arm2.sid] == {t1.id, t2.id}
    # the clearing check ends t1's range; t2 survives one more stmt
    assert live[chk1.sid] == {t2.id}
    assert live[chk2.sid] == frozenset()


def test_loop_live_range_spans_every_iteration():
    fn, t, head, body, chk = loop_spec_fn()
    fa = _FunctionAnalysis(fn, ALATConfig())
    fa._solve_ranges()
    # armed above the loop, kept by the .nc check: live throughout the
    # loop (header and body), dead after the exit
    assert t.id in fa._armed.entry(head)
    assert t.id in fa._armed.entry(body)
    assert t.id in fa._needed.entry(body)
    armed = armed_by_stmt(fn)
    assert t.id in armed[chk.sid]


def test_dead_arming_is_armed_but_not_needed():
    mb = ModuleBuilder("m")
    g = mb.global_var("g", INT, init=1)
    fb = mb.function("main", [], INT)
    t = fb.temp(INT, "t")
    arm = fb.assign(t, fb.load(fb.addr(g)))
    arm.spec_flag = SpecFlag.LD_A
    fb.ret(fb.read(t))
    fb.finish()
    mb.finish()
    fb.fn.compute_preds()
    fp = analyze_function_pressure(fb.fn)
    rep = fp.candidates[t.id]
    assert rep.n_checks == 0
    assert rep.dead_arming_weight > 0
    assert rep.unprofitable
    # and the armed-forever entry shows up as exit residue
    assert sum(fp.exit_residue.values()) == 1


def test_cascade_dependents_follow_reload_addresses():
    fn, pa, pv = cascade_spec_fn()
    fp = analyze_function_pressure(fn)
    assert pv.id in fp.candidates[pa.id].dependents
    assert not fp.candidates[pv.id].dependents


# -- conflict prediction ----------------------------------------------


def test_conflicts_match_hand_computed_set_indices():
    """Three simultaneously-armed temps on a 2-set direct-mapped ALAT:
    registers 0 and 2 collide in set 0, register 1 has set 1 alone."""
    alat = ALATConfig(entries=2, associativity=1)
    mb = ModuleBuilder("m")
    gs = [mb.global_var(f"g{i}", INT, init=i) for i in range(3)]
    fb = mb.function("main", [], INT)
    ts = [fb.temp(INT, f"t{i}") for i in range(3)]
    for t, g in zip(ts, gs):
        arm = fb.assign(t, fb.load(fb.addr(g)))
        arm.spec_flag = SpecFlag.LD_A
    acc = fb.read(ts[0])
    for t, g in zip(ts, gs):
        chk = fb.assign(t, fb.load(fb.addr(g)))
        chk.spec_flag = SpecFlag.LD_C
    fb.ret(acc)
    fb.finish()
    mb.finish()
    fb.fn.compute_preds()
    fp = analyze_function_pressure(fb.fn, alat)

    from repro.target.codegen import assign_registers

    regs = assign_registers(fb.fn)
    for t in ts:
        expected = set_index_for_register(regs[t.id], alat)
        assert fp.candidates[t.id].set_index == expected
    r0, r1, r2 = (fp.candidates[t.id] for t in ts)
    assert r0.set_index == r2.set_index == 0
    assert r1.set_index == 1
    assert r2.temp_id in r0.conflicts_with
    assert r0.temp_id in r2.conflicts_with
    assert not r1.conflicts_with
    # one of the two set-0 entries is the predicted victim
    assert P_CONFLICT_VICTIM in (r0.p_conflict, r2.p_conflict)
    assert r1.p_conflict == 0.0
    assert fp.peak_by_set[0] == 2
    assert fp.peak_occupancy == 3


def test_candidate_report_combines_miss_sources():
    rep = CandidateReport(
        function="f",
        temp_id=1,
        name="t",
        register=0,
        set_index=0,
        is_float=False,
        n_arming=1,
        n_checks=1,
        n_branching_checks=0,
        check_weight=1.0,
        p_alias=0.5,
        p_conflict=0.5,
    )
    assert rep.p_miss == pytest.approx(0.75)


# -- the promotion gate end to end ------------------------------------


def _advanced_loads(program):
    return sum(
        1
        for mf in program.functions.values()
        for ins in mf.instrs
        if isinstance(ins, Ld) and ins.kind is not LoadKind.NORMAL
    )


@pytest.mark.parametrize("bench", ["gzip", "equake"])
def test_gate_demotes_without_changing_output(bench):
    w = get_workload(bench)
    results = {}
    for gate in (PromotionGate.OFF, PromotionGate.ON):
        opts = SPECULATIVE()
        opts.promotion_gate = gate
        out = compile_source(
            w.source, opts, train_args=list(w.train_args), name=bench
        )
        run = out.run(list(w.ref_args))
        results[gate] = (out, run)
    out_off, run_off = results[PromotionGate.OFF]
    out_on, run_on = results[PromotionGate.ON]
    assert run_on.output == run_off.output
    assert run_on.exit_value == run_off.exit_value
    # demotion really stripped advanced loads from the machine code
    assert _advanced_loads(out_on.program) < _advanced_loads(out_off.program)
    # and the surviving speculation misses no more often than before
    off, on = run_off.alat_stats, run_on.alat_stats
    assert on.capacity_evictions <= off.capacity_evictions
    assert on.peak_occupancy <= off.peak_occupancy


def test_gate_on_cuts_evictions_on_pressure_heavy_workload():
    w = get_workload("equake")
    evictions = {}
    for gate in (PromotionGate.OFF, PromotionGate.ON):
        opts = SPECULATIVE()
        opts.promotion_gate = gate
        out = compile_source(
            w.source, opts, train_args=list(w.train_args), name="equake"
        )
        evictions[gate] = out.run(list(w.ref_args)).alat_stats.capacity_evictions
    assert evictions[PromotionGate.ON] < evictions[PromotionGate.OFF]


def test_warn_mode_flags_but_keeps_promotions():
    w = get_workload("gzip")
    opts = SPECULATIVE()
    assert opts.promotion_gate is PromotionGate.WARN
    out = compile_source(
        w.source, opts, train_args=list(w.train_args), name="gzip"
    )
    pressure_diags = [d for d in out.diagnostics if d.rule == "PRESSURE"]
    assert pressure_diags, "gzip's dead armings should be flagged"
    assert _advanced_loads(out.program) > 0


def test_pressure_decision_trace_events():
    from repro.obs.sinks import MemorySink
    from repro.obs.trace import TraceContext

    sink = MemorySink()
    obs = TraceContext(sink)
    w = get_workload("gzip")
    opts = SPECULATIVE()
    compile_source(
        w.source, opts, train_args=list(w.train_args), name="gzip", obs=obs
    )
    decisions = [e for e in sink.events if e["event"] == "pressure.decision"]
    assert decisions
    verdicts = {e["verdict"] for e in decisions}
    assert "flag" in verdicts  # warn mode marks would-be demotions
    for e in decisions:
        assert {"function", "temp", "register", "set_index", "profit"} <= set(e)


def test_demotion_plan_spares_net_positive_groups():
    """A dead address temp whose dependents are highly profitable must
    not drag them down: the group nets positive and is kept whole."""
    w = get_workload("ammp")
    opts = SPECULATIVE()
    opts.promotion_gate = PromotionGate.OFF
    out = compile_source(
        w.source, opts, train_args=list(w.train_args), name="ammp"
    )
    from repro.speclint import facts_from_pre_stats

    facts = facts_from_pre_stats(out.pre_stats, out.alias_manager)
    mp = analyze_module_pressure(
        out.module,
        opts.machine.alat,
        am=out.alias_manager,
        profile=out.profile,
        targets_by_temp=facts.targets_by_temp,
    )
    plan = mp.demotion_plan()
    demoted = {
        (fn, t) for fn, reasons in plan.items() for t in reasons
    }
    for fp in mp.functions.values():
        for rep in fp.candidates.values():
            if rep.profit > 0:
                assert (fp.function, rep.temp_id) not in demoted


# -- calibration -------------------------------------------------------


def test_calibration_within_tolerance_on_pressure_matrix():
    from repro.analysis.alatpressure import run_calibration

    rows, problems = run_calibration(["gzip", "ammp", "equake"])
    assert problems == [], problems
    assert len(rows) == 3
    by_name = {r.workload: r for r in rows}
    # the residue model reproduces the stale-activation peaks
    assert by_name["gzip"].actual_peak == by_name["gzip"].predicted_peak
    assert abs(by_name["ammp"].predicted_peak - by_name["ammp"].actual_peak) <= 2
