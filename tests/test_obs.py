"""Observability subsystem: sinks, trace context, pipeline/simulator
event streams, metrics aggregation — and the zero-overhead-when-off
contract (tracing must not perturb simulated counters at all)."""

import io
import json

import pytest

from repro.machine.alat import ALAT, ALATConfig
from repro.obs import (
    JsonlSink,
    MemorySink,
    NULL_SINK,
    NullSink,
    TraceContext,
    build_metrics,
    format_summary,
    make_sink,
    misspeculation_breakdown,
    read_jsonl,
)
from repro.pipeline import CompilerOptions, OptLevel, SpecMode, compile_source

# A conflicting-store loop: trained on the no-conflict path (n <= 100)
# the profile decider picks ALAT speculation; run on the conflicting
# path every iteration's store collides, so the trace contains the full
# alat.allocate / alat.collision / alat.check story.
CONFLICT_SRC = """
int a;
int b;
int *p;

int main(int n) {
    if (n > 100) { p = &a; } else { p = &b; }
    a = 7;
    int s = 0;
    int i = 0;
    while (i < n) {
        s = s + a;
        *p = s;
        s = s + a;
        i = i + 1;
    }
    print(s);
    return 0;
}
"""

SPEC_OPTS = dict(
    options=CompilerOptions(opt_level=OptLevel.O3, spec_mode=SpecMode.PROFILE),
    train_args=[10],
)


def traced_run(args, snapshot_every=0):
    sink = MemorySink()
    obs = TraceContext(sink, snapshot_every=snapshot_every)
    out = compile_source(CONFLICT_SRC, obs=obs, **SPEC_OPTS)
    result = out.run(args)
    return sink, out, result


# -- sinks ---------------------------------------------------------------


def test_null_sink_is_disabled_and_shared():
    assert NULL_SINK.enabled is False
    assert NullSink().enabled is False
    # TraceContext defaults to it
    assert TraceContext().enabled is False


def test_memory_sink_collects_and_filters():
    sink = MemorySink()
    obs = TraceContext(sink)
    obs.event("a", x=1)
    obs.event("b", y=2)
    obs.event("a", x=3)
    assert [e["x"] for e in sink.of_type("a")] == [1, 3]
    assert [e["seq"] for e in sink.events] == [1, 2, 3]


def test_jsonl_round_trip():
    buf = io.StringIO()
    obs = TraceContext(JsonlSink(buf))
    obs.event("alat.check", tag=(1, 4), hit=False, clear=True)
    with obs.phase("pre"):
        pass
    events = read_jsonl(buf.getvalue())
    assert [e["event"] for e in events] == [
        "alat.check", "phase.begin", "phase.end",
    ]
    # tuples become lists, but nothing else is mangled
    assert events[0]["tag"] == [1, 4]
    assert events[0]["hit"] is False
    assert events[2]["wall_ms"] >= 0


def test_jsonl_sink_file_and_make_sink(tmp_path):
    path = tmp_path / "trace.jsonl"
    sink = make_sink(str(path))
    assert isinstance(sink, JsonlSink)
    with TraceContext(sink) as obs:
        obs.event("sim.begin", program="t")
    events = read_jsonl(str(path))
    assert events == [{"seq": 1, "event": "sim.begin", "program": "t"}]
    assert make_sink(None) is NULL_SINK
    assert make_sink("") is NULL_SINK


def test_trace_context_disabled_emits_nothing_but_times_phases():
    obs = TraceContext()
    with obs.phase("frontend"):
        pass
    obs.event("spec.decision", verdict="alat")
    assert obs.seq == 0
    assert "frontend" in obs.phase_times


# -- full-pipeline event stream -----------------------------------------


def test_event_ordering_across_compile_and_run():
    sink, out, result = traced_run([150])
    events = sink.events
    # seq numbers are strictly increasing and 1-based
    assert [e["seq"] for e in events] == list(range(1, len(events) + 1))

    names = [e["event"] for e in events]
    # compilation phases open/close in pipeline order, then simulation
    begins = [e["phase"] for e in events if e["event"] == "phase.begin"]
    assert begins[0] == "frontend"
    assert begins[-1] == "simulate"
    assert begins.index("pre") < begins.index("codegen") < begins.index("simulate")
    assert set(begins) <= set(out.obs.phase_times)

    # every phase.begin has a matching phase.end
    opened = []
    for e in events:
        if e["event"] == "phase.begin":
            opened.append(e["phase"])
        elif e["event"] == "phase.end":
            assert opened.pop() == e["phase"]
    assert opened == []

    # speculation decisions happen inside the pre phase
    pre_begin = next(e["seq"] for e in events
                     if e["event"] == "phase.begin" and e["phase"] == "pre")
    pre_end = next(e["seq"] for e in events
                   if e["event"] == "phase.end" and e["phase"] == "pre")
    decisions = sink.of_type("spec.decision")
    assert decisions, "profile decider verdicts must be traced"
    assert all(pre_begin < e["seq"] < pre_end for e in decisions)
    assert all(e["verdict"] in ("alat", "soft", None) for e in decisions)

    # the transformation's surviving annotations are reported
    lowered = {e["flag"] for e in sink.of_type("spec.lowered")}
    assert "ld.a" in lowered or "ld.sa" in lowered

    # codegen reports per-function instruction mixes
    cg = sink.of_type("codegen.function")
    assert {e["function"] for e in cg} == {"main"}
    assert cg[0]["instructions"] > 0

    # simulation brackets the machine events
    sim_begin = next(e["seq"] for e in events if e["event"] == "sim.begin")
    sim_end = next(e["seq"] for e in events if e["event"] == "sim.end")
    machine_events = [e for e in events
                      if e["event"].startswith(("alat.", "cache.", "rse."))]
    assert machine_events
    assert all(sim_begin < e["seq"] < sim_end for e in machine_events)
    assert events[sim_end - 1]["exit_value"] == result.exit_value
    assert events[sim_end - 1]["cycles"] == result.counters.cpu_cycles


def test_alat_events_match_stats():
    sink, out, result = traced_run([150])
    stats = result.alat_stats
    assert len(sink.of_type("alat.allocate")) == stats.allocations
    assert len(sink.of_type("alat.collision")) == stats.store_collisions
    assert len(sink.of_type("alat.evict")) == stats.capacity_evictions
    checks = sink.of_type("alat.check")
    assert len(checks) == stats.check_hits + stats.check_misses
    assert sum(1 for e in checks if e["hit"]) == stats.check_hits
    assert stats.store_collisions > 0, "conflict run must collide"
    # events carry the instruction index and the register tag
    for e in sink.of_type("alat.collision"):
        assert e["instr"] > 0
        serial, reg = e["tag"]
        assert serial >= 1 and reg >= 0


def test_misspeculation_breakdown_attributes_collisions():
    sink, out, result = traced_run([150])
    breakdown = misspeculation_breakdown(sink.events)
    assert breakdown["collision"] == result.counters.check_failures
    assert breakdown["hits"] == result.alat_stats.check_hits
    assert breakdown["capacity"] == 0


def test_counters_snapshots_are_periodic():
    sink, out, result = traced_run([150], snapshot_every=100)
    snaps = sink.of_type("counters.snapshot")
    expected = result.counters.instructions // 100
    assert len(snaps) == expected
    # monotone time series
    cycles = [s["instructions"] for s in snaps]
    assert cycles == sorted(cycles)
    assert snaps[-1]["retired_loads"] <= result.counters.retired_loads


# -- the zero-overhead contract -----------------------------------------


def test_tracing_does_not_perturb_simulated_counters():
    sink, _, traced = traced_run([150], snapshot_every=50)
    plain_out = compile_source(CONFLICT_SRC, **SPEC_OPTS)
    plain = plain_out.run([150])
    assert traced.output == plain.output
    assert traced.exit_value == plain.exit_value
    assert traced.counters.as_dict() == plain.counters.as_dict()
    from dataclasses import asdict

    assert asdict(traced.alat_stats) == asdict(plain.alat_stats)
    assert asdict(traced.cache_stats) == asdict(plain.cache_stats)
    assert asdict(traced.rse_stats) == asdict(plain.rse_stats)
    # and the untraced run retained no events anywhere
    assert plain_out.obs.seq == 0
    assert sink.events  # while the traced one obviously did


def test_untraced_run_installs_no_observers():
    out = compile_source(CONFLICT_SRC, **SPEC_OPTS)
    from repro.machine.cpu import Simulator

    sim = Simulator(out.program, out.options.machine)
    sim.run([150])
    assert sim.alat.observer is None
    assert sim.cache.observer is None
    assert sim.rse.observer is None


# -- invalidate accounting (invala.e) -----------------------------------


def test_invalidate_entry_counts_attempts_and_drops_separately():
    alat = ALAT(ALATConfig())
    assert alat.invalidate_entry((1, 5)) is False  # nothing there
    alat.allocate((1, 5), 0x1000)
    assert alat.invalidate_entry((1, 5)) is True
    assert alat.invalidate_entry((1, 5)) is False  # already gone
    assert alat.stats.explicit_invalidations == 3
    assert alat.stats.explicit_drops == 1
    assert alat.occupancy == 0


# -- metrics -------------------------------------------------------------


def test_build_metrics_and_summary():
    sink, out, result = traced_run([150])
    metrics = build_metrics(out, result)
    assert metrics["options"].startswith("-O3")
    assert metrics["counters"]["check_failures"] == result.counters.check_failures
    assert metrics["alat"]["store_collisions"] == result.alat_stats.store_collisions
    assert set(metrics["phase_wall_ms"]) >= {"frontend", "pre", "codegen", "simulate"}
    assert metrics["exit_value"] == result.exit_value
    # JSON-serialisable as-is
    text = json.dumps(metrics)
    summary = format_summary(json.loads(text))
    assert "ALAT" in summary and "store_collisions=" in summary
    assert "phases" in summary


def test_counters_as_dict_tracks_dataclass_fields():
    from repro.machine.counters import Counters

    c = Counters(check_instructions=10, check_failures=3, retired_loads=90)
    d = c.as_dict()
    assert d["check_failures"] == 3
    assert "cpu_cycles" in d
    # every dataclass field is present — no hand-maintained list to rot
    import dataclasses

    assert set(d) == {f.name for f in dataclasses.fields(Counters)}
    assert "retired_advanced_loads" in d
