"""Cascade promotion (paper section 2.4, Figure 4): chk.a with
recovery code for pointer chains, enabled by a second promotion round
(`CompilerOptions(rounds=2)`)."""

import pytest

from repro.ir.stmt import Assign, SpecFlag
from repro.pipeline import (
    CompilerOptions,
    OptLevel,
    SpecMode,
    compile_source,
    run_program,
)

#: **q chain: statically the *w store may modify the pointer p itself;
#: dynamically it (almost) never does.
CHAIN_SRC = """
int a; int b; int c;
int *p;
int *other;
int **q;
int **w;

int main(int n) {
    q = &p;
    p = &a;
    other = &c;
    w = &other;
    if (n == -1) { w = &p; }   // dead: statically *w may modify p
    a = 3;
    int s = 0;
    int i = 0;
    while (i < n) {
        s = s + *(*q);
        *w = &b;               // address-ambiguous pointer store
        s = s + *(*q);
        i = i + 1;
    }
    print(s);
    print(*p);
    return 0;
}
"""

#: Same chain, but the address really is modified on rare iterations the
#: training input never reaches — the chk.a recovery must repair both
#: the pointer and the value.
MISSPEC_SRC = """
int a; int b; int c;
int *p;
int *other;
int **q;
int **w;

int main(int n) {
    q = &p;
    p = &a;
    other = &c;
    a = 3;
    b = 9;
    int s = 0;
    int i = 0;
    while (i < n) {
        if (i > 20 && i % 7 == 0) {
            w = &p;            // genuine address aliasing (rare)
        } else {
            w = &other;
        }
        s = s + *(*q);
        *w = &b;               // sometimes really redirects p to b!
        s = s + *(*q);
        i = i + 1;
    }
    print(s);
    print(*p);
    return 0;
}
"""


def compile_chain(src, rounds, train):
    return compile_source(
        src,
        CompilerOptions(
            opt_level=OptLevel.O3, spec_mode=SpecMode.PROFILE, rounds=rounds
        ),
        train_args=train,
    )


def cascade_count(out):
    return sum(
        r.cascade_upgrades
        for stats in out.pre_stats.values()
        for r in stats.results
    )


def chk_a_statements(out):
    return [
        stmt
        for fn in out.module.iter_functions()
        for stmt in fn.iter_stmts()
        if isinstance(stmt, Assign) and stmt.spec_flag.is_branching_check
    ]


def test_round2_upgrades_to_chk_a():
    out = compile_chain(CHAIN_SRC, rounds=2, train=[10])
    assert cascade_count(out) >= 1
    chks = chk_a_statements(out)
    assert chks, "expected at least one chk.a"
    for stmt in chks:
        assert stmt.recovery, "chk.a must carry recovery code"
        # recovery reloads the address first, then the value
        assert len(stmt.recovery) >= 2


def test_round1_does_not_cascade():
    out = compile_chain(CHAIN_SRC, rounds=1, train=[10])
    assert cascade_count(out) == 0
    assert not chk_a_statements(out)


def test_cascade_eliminates_more_loads():
    one = compile_chain(CHAIN_SRC, rounds=1, train=[10]).run([30])
    two = compile_chain(CHAIN_SRC, rounds=2, train=[10]).run([30])
    assert one.output == two.output
    assert two.counters.retired_loads < one.counters.retired_loads


@pytest.mark.parametrize("rounds", [1, 2])
@pytest.mark.parametrize("n", [10, 30])
def test_cascade_correct_when_profile_holds(rounds, n):
    ref = run_program(CHAIN_SRC, [n])
    out = compile_chain(CHAIN_SRC, rounds=rounds, train=[10])
    assert out.interpret([n]).output == ref.output
    assert out.run([n]).output == ref.output


@pytest.mark.parametrize("rounds", [1, 2])
@pytest.mark.parametrize("n", [10, 60, 100])
def test_cascade_correct_under_address_misspeculation(rounds, n):
    """The address really changes beyond the training window: chk.a must
    fail and its recovery must reload pointer AND value."""
    ref = run_program(MISSPEC_SRC, [n])
    out = compile_chain(MISSPEC_SRC, rounds=rounds, train=[15])
    ires = out.interpret([n])
    assert ires.output == ref.output, f"interp diverged (rounds={rounds})"
    mres = out.run([n])
    assert mres.output == ref.output, f"machine diverged (rounds={rounds})"


def test_recovery_pays_the_penalty():
    """chk.a failures must show up as recovery cycles in the machine."""
    out = compile_chain(MISSPEC_SRC, rounds=2, train=[15])
    if cascade_count(out) == 0:
        pytest.skip("no cascade produced for this shape")
    res = out.run([100])
    if res.counters.check_failures:
        assert res.counters.recovery_cycles > 0


def test_recovery_reexecutes_whole_cascade_chain():
    """Figure 4: when the chk.a of a cascaded chain fails, recovery must
    re-execute *every* load of the chain (pointer and value), not just
    the checked one — each re-arms its ALAT entry, so counting allocate
    calls per register observes the re-execution directly."""
    from collections import Counter

    from repro.machine.cpu import Simulator
    from repro.target.isa import Br, ChkA, Label, Ld, LoadKind, RetF

    out = compile_chain(MISSPEC_SRC, rounds=2, train=[15])
    if cascade_count(out) == 0:
        pytest.skip("no cascade produced for this shape")

    fn = out.program.functions["main"]
    chks = [i for i in fn.instrs if isinstance(i, ChkA)]
    assert chks, "cascade must lower to a branching chk.a"
    chk = chks[0]

    # The recovery body runs from its label to the branch back to the
    # continuation; collect the advanced loads it re-executes.
    start = fn.label_index(chk.recovery_label) + 1
    rec_regs = []
    for instr in fn.instrs[start:]:
        if isinstance(instr, (Br, RetF, Label)):
            break
        if isinstance(instr, Ld) and instr.kind in (
            LoadKind.ADVANCED, LoadKind.SPEC_ADVANCED
        ):
            rec_regs.append(instr.rd)
    assert len(rec_regs) >= 2, (
        "recovery must reload the pointer and the value"
    )

    sim = Simulator(out.program, out.options.machine)
    allocs: Counter = Counter()
    orig_allocate = sim.alat.allocate

    def counting_allocate(tag, addr):
        allocs[tag[1]] += 1
        return orig_allocate(tag, addr)

    sim.alat.allocate = counting_allocate
    res = sim.run([100])

    assert res.output == run_program(MISSPEC_SRC, [100]).output
    assert res.counters.check_failures > 0, "n=100 must mis-speculate"
    # Each load of the chain was armed once on entry and re-armed on
    # every recovery run: both chain registers re-allocate in lockstep,
    # and more than the single initial arming.
    first, second = rec_regs[0], rec_regs[1]
    assert allocs[first] >= 2, "recovery never re-executed the chain"
    assert allocs[first] == allocs[second], (
        "recovery re-executed only part of the cascade chain: "
        f"reg {first} re-armed {allocs[first]}x but reg {second} "
        f"{allocs[second]}x"
    )
