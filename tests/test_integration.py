"""End-to-end integration scenarios across the whole stack."""

import pytest

from repro.minic import compile_to_ir
from repro.ir.interp import run_module
from repro.pipeline import CompilerOptions, OptLevel, SpecMode, compile_source
from repro.workloads.programs import get_workload


def test_optimization_ladder_on_a_workload():
    """Each promotion level must preserve output; O0..O2 strictly help.
    O3's software checks are an *investment* (compare/reload overhead)
    that may cost a little on small inputs — allow slack there, exactly
    the trade-off the paper's ALAT treatment then removes."""
    w = get_workload("vortex")
    args = [40]
    cycles = {}
    outputs = set()
    for lvl in (OptLevel.O0, OptLevel.O1, OptLevel.O2, OptLevel.O3):
        out = compile_source(
            w.source, CompilerOptions(opt_level=lvl), train_args=list(w.train_args)
        )
        res = out.run(args)
        outputs.add(tuple(res.output))
        cycles[lvl] = res.counters.cpu_cycles
    assert len(outputs) == 1
    assert cycles[OptLevel.O0] >= cycles[OptLevel.O1] >= cycles[OptLevel.O2]
    assert cycles[OptLevel.O3] <= cycles[OptLevel.O2] * 1.15


def test_speculation_composes_with_cascade_and_cleanup():
    w = get_workload("mcf")
    args = [30]
    ref = run_module(compile_to_ir(w.source), args)
    for rounds in (1, 2):
        for cleanup in (True, False):
            out = compile_source(
                w.source,
                CompilerOptions(
                    opt_level=OptLevel.O3,
                    spec_mode=SpecMode.PROFILE,
                    rounds=rounds,
                    cleanup=cleanup,
                ),
                train_args=list(w.train_args),
            )
            res = out.run(args)
            assert res.output == ref.output, (rounds, cleanup)


def test_counters_internally_consistent():
    """Cross-counter invariants on a full workload run."""
    w = get_workload("gzip")
    out = compile_source(
        w.source,
        CompilerOptions(opt_level=OptLevel.O3, spec_mode=SpecMode.PROFILE),
        train_args=list(w.train_args),
    )
    res = out.run(list(w.ref_args))
    c = res.counters
    assert c.retired_indirect_loads <= c.retired_loads
    assert c.check_failures <= c.check_instructions
    assert c.data_access_cycles <= c.cpu_cycles * c.instructions  # sanity
    assert c.instructions >= c.retired_loads + c.retired_stores
    assert c.cpu_cycles > 0


def test_profile_from_multiple_training_runs():
    """Merged profiles from several train inputs are usable and safe."""
    from repro.speculation.profile import collect_alias_profile

    w = get_workload("twolf")
    module = compile_to_ir(w.source)
    merged, _ = collect_alias_profile(module, [20])
    for extra in ([50], [70]):
        p, _ = collect_alias_profile(module, extra)
        merged.merge(p)
    out = compile_source(
        w.source,
        CompilerOptions(opt_level=OptLevel.O3, spec_mode=SpecMode.PROFILE),
        profile=merged,
    )
    ref = run_module(compile_to_ir(w.source), [120])
    assert out.run([120]).output == ref.output


def test_example_scripts_import_and_expose_main():
    import importlib.util
    import pathlib

    examples = pathlib.Path(__file__).parent.parent / "examples"
    for script in sorted(examples.glob("*.py")):
        spec = importlib.util.spec_from_file_location(script.stem, script)
        mod = importlib.util.module_from_spec(spec)
        spec.loader.exec_module(mod)
        assert hasattr(mod, "main"), script.name


def test_custom_workload_example_end_to_end(capsys):
    import importlib.util
    import pathlib

    script = pathlib.Path(__file__).parent.parent / "examples" / "custom_workload.py"
    spec = importlib.util.spec_from_file_location("custom_workload", script)
    mod = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(mod)
    mod.main()
    out = capsys.readouterr().out
    assert "hashjoin" in out and "Figure 8" in out
