"""Property-based tests (hypothesis).

The heavyweight property is the differential one: random well-formed
MiniC programs with aliased pointers must produce identical output
under every compilation mode, on inputs that both match and violate the
training profile.  Lightweight properties check arithmetic helpers, the
ALAT against a naive reference model, and dominators against the
path-based definition on random CFGs.
"""

from __future__ import annotations

import pytest
from hypothesis import HealthCheck, given, settings, strategies as st

from repro.analysis import compute_dominators
from repro.ir.builder import ModuleBuilder
from repro.ir.expr import BinOpKind, ConstInt
from repro.ir.interp import int_div, int_mod, wrap_int
from repro.ir.stmt import Return
from repro.ir.types import INT
from repro.machine.alat import ALAT, ALATConfig

from tests.conftest import ALL_MODES, assert_all_modes_agree

# ---------------------------------------------------------------------------
# arithmetic helpers
# ---------------------------------------------------------------------------

ints = st.integers(min_value=-(2**64), max_value=2**64)


@given(ints)
def test_wrap_int_range(v):
    w = wrap_int(v)
    assert -(2**63) <= w < 2**63
    assert (w - v) % (2**64) == 0  # congruent mod 2^64


@given(ints, ints.map(wrap_int).filter(lambda b: b != 0))
def test_div_mod_inverse(a, b):
    a = wrap_int(a)
    q, r = int_div(a, b), int_mod(a, b)
    assert wrap_int(q * b + r) == a
    if q * b + r == a:  # no wrap occurred
        assert abs(r) < abs(b)


@given(ints)
def test_wrap_int_idempotent(v):
    assert wrap_int(wrap_int(v)) == wrap_int(v)


# ---------------------------------------------------------------------------
# ALAT vs naive reference
# ---------------------------------------------------------------------------


class _NaiveALAT:
    """Fully-associative, unbounded, full-address reference model.

    The real ALAT may only have *fewer* valid entries (capacity and
    partial-address collisions drop entries); a check that hits in the
    real table must hit in the naive one.
    """

    def __init__(self):
        self.entries = {}

    def allocate(self, tag, addr):
        self.entries[tag] = addr

    def snoop_store(self, addr):
        self.entries = {t: a for t, a in self.entries.items() if a != addr}

    def check(self, tag, clear):
        hit = tag in self.entries
        if hit and clear:
            del self.entries[tag]
        return hit

    def invalidate_entry(self, tag):
        self.entries.pop(tag, None)


ops = st.lists(
    st.one_of(
        st.tuples(st.just("alloc"), st.integers(0, 7), st.integers(0x100, 0x140)),
        st.tuples(st.just("store"), st.integers(0x100, 0x140)),
        st.tuples(st.just("check"), st.integers(0, 7), st.booleans()),
        st.tuples(st.just("inval"), st.integers(0, 7)),
    ),
    max_size=60,
)


@given(ops)
def test_alat_hits_imply_naive_hits(op_list):
    real = ALAT(ALATConfig(entries=4, associativity=2, partial_bits=16))
    naive = _NaiveALAT()
    for op in op_list:
        if op[0] == "alloc":
            real.allocate((1, op[1]), op[2])
            naive.allocate((1, op[1]), op[2])
        elif op[0] == "store":
            real.snoop_store(op[1])
            naive.snoop_store(op[1])
        elif op[0] == "check":
            r = real.check((1, op[1]), op[2])
            n = naive.check((1, op[1]), op[2])
            # safety: the hardware may spuriously MISS (capacity,
            # partial collisions) but never spuriously HIT
            assert not (r and not n)
        else:
            real.invalidate_entry((1, op[1]))
            naive.invalidate_entry((1, op[1]))


@given(ops)
def test_alat_occupancy_bounded(op_list):
    config = ALATConfig(entries=4, associativity=2)
    real = ALAT(config)
    for op in op_list:
        if op[0] == "alloc":
            real.allocate((1, op[1]), op[2])
        elif op[0] == "store":
            real.snoop_store(op[1])
        elif op[0] == "check":
            real.check((1, op[1]), op[2])
        else:
            real.invalidate_entry((1, op[1]))
        assert real.occupancy <= config.entries


# ---------------------------------------------------------------------------
# dominators on random CFGs
# ---------------------------------------------------------------------------


@st.composite
def random_cfg(draw):
    """A random function: N blocks, random branches, all terminated."""
    n = draw(st.integers(min_value=2, max_value=10))
    mb = ModuleBuilder("m")
    fb = mb.function("main", [], INT)
    blocks = [fb.current] + [fb.block() for _ in range(n - 1)]
    for i, block in enumerate(blocks):
        fb.set_block(block)
        kind = draw(st.integers(0, 2))
        if kind == 0 or i == n - 1:
            fb.ret(0)
        elif kind == 1:
            target = blocks[draw(st.integers(0, n - 1))]
            fb.jump(target)
        else:
            t1 = blocks[draw(st.integers(0, n - 1))]
            t2 = blocks[draw(st.integers(0, n - 1))]
            fb.branch(ConstInt(1), t1, t2)
    fn = fb.finish()
    fn.remove_unreachable_blocks()
    return fn


@given(random_cfg())
@settings(max_examples=50, suppress_health_check=[HealthCheck.too_slow])
def test_dominators_match_bruteforce_on_random_cfgs(fn):
    dom = compute_dominators(fn)
    blocks = fn.reachable_blocks()

    def brute(a, b):
        if a is b:
            return True
        seen, stack = set(), [fn.entry]
        while stack:
            cur = stack.pop()
            if cur is a or cur.bid in seen:
                continue
            seen.add(cur.bid)
            if cur is b:
                return False
            stack.extend(cur.successors())
        return True

    for a in blocks:
        for b in blocks:
            assert dom.dominates(a, b) == brute(a, b)


# ---------------------------------------------------------------------------
# random-program differential testing
# ---------------------------------------------------------------------------

_PRELUDE = """
int g0; int g1; int g2; int g3;
int arr[8];
int *p0;
int *p1;
float f0;
int calls;

int helper(int x) {
    calls = calls + 1;
    g3 = g3 + x %% 5;
    return x * 2 + g0 %% 3;
}
""".replace("%%", "%")

_POINTER_TARGETS = ["&g0", "&g1", "&g2", "&arr[{i}]"]


@st.composite
def random_program(draw):
    """A random but well-defined MiniC program.

    Shape: pointer setup (possibly data-dependent), then a bounded loop
    of statements mixing direct/indirect reads and writes, then prints.
    Pointers always point at valid globals; divisors are never zero;
    indices are masked.  This keeps every generated program within
    defined behaviour so the interpreter is a valid oracle.
    """
    lines = []

    def expr(depth=0) -> str:
        choices = ["i", "s", "g0", "g1", "g2", "g3", "*p0", "*p1",
                   "arr[i % 8]", str(draw(st.integers(-9, 9)))]
        if depth < 2 and draw(st.booleans()):
            op = draw(st.sampled_from(["+", "-", "*"]))
            return f"({expr(depth + 1)} {op} {expr(depth + 1)})"
        return draw(st.sampled_from(choices))

    # pointer initialisation: unconditional or input-dependent
    t0 = draw(st.sampled_from(_POINTER_TARGETS)).format(i=draw(st.integers(0, 7)))
    t1 = draw(st.sampled_from(_POINTER_TARGETS)).format(i=draw(st.integers(0, 7)))
    if draw(st.booleans()):
        lines.append(f"    if (n > 50) {{ p0 = {t0}; }} else {{ p0 = {t1}; }}")
    else:
        lines.append(f"    p0 = {t0};")
    t2 = draw(st.sampled_from(_POINTER_TARGETS)).format(i=draw(st.integers(0, 7)))
    lines.append(f"    p1 = {t2};")

    # optional heap block: p1 may point into fresh heap storage instead
    use_heap = draw(st.booleans())
    if use_heap:
        lines.append("    int *heap = alloc(int, 8);")
        lines.append("    p1 = &heap[0];")

    n_stmts = draw(st.integers(2, 9))
    body = []
    for _ in range(n_stmts):
        kind = draw(st.integers(0, 7))
        if kind == 0:
            body.append(f"s = s + {expr()};")
        elif kind == 1:
            target = draw(st.sampled_from(["g0", "g1", "g2", "g3", "arr[i % 8]"]))
            body.append(f"{target} = {expr()};")
        elif kind == 2:
            ptr = draw(st.sampled_from(["p0", "p1"]))
            body.append(f"*{ptr} = {expr()};")
        elif kind == 3:
            body.append(f"if ({expr()} > {expr()}) {{ s = s + 1; }}")
        elif kind == 4:
            ptr = draw(st.sampled_from(["p0", "p1"]))
            body.append(f"s = s + *{ptr};")
        elif kind == 5:
            body.append(f"f0 = f0 + {draw(st.integers(1, 3))}.5;")
        elif kind == 6:
            body.append(f"s = s + helper({expr()});")
        else:
            limit = draw(st.integers(1, 100))
            body.append(f"if (s > {limit * 100}) {{ break; }}")

    loop_body = "\n            ".join(body)
    lines.append(
        f"""    int s = 0;
    for (int i = 0; i < n % 23; i = i + 1) {{
            {loop_body}
    }}"""
    )
    lines.append("    print(s); print(g0); print(g1); print(g2); print(g3);")
    lines.append("    print(arr[0]); print(arr[5]); print(f0); print(*p0);")
    lines.append("    print(*p1); print(calls);")
    lines.append("    return s % 256;")
    source = _PRELUDE + "int main(int n) {\n" + "\n".join(lines) + "\n}\n"
    return source


@given(random_program(), st.integers(0, 120), st.integers(0, 120))
@settings(
    max_examples=30,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow, HealthCheck.data_too_large],
)
def test_random_programs_agree_across_all_modes(source, ref_arg, train_arg):
    """The flagship property: every mode, interpreter and simulator,
    trained on one input and run on another (mis-speculation included),
    produces identical observable output."""
    assert_all_modes_agree(source, [ref_arg], train_args=[train_arg])


# ---------------------------------------------------------------------------
# random pointer-chain programs (cascade coverage)
# ---------------------------------------------------------------------------

_CHAIN_PRELUDE = """
int a; int b; int c; int d;
int *p;
int *alt;
int **q;
int **w;
int out;
"""


@st.composite
def random_chain_program(draw):
    """Random **q programs: the inner pointer may really be redirected
    at a random rate, exercising cascade promotion (rounds=2) and its
    chk.a recovery under both success and failure."""
    lines = [
        "    q = &p;",
        f"    p = &{draw(st.sampled_from(['a', 'b']))};",
        "    alt = &d;",
        "    w = &alt;",
        "    if (n == -1) { w = &p; }",
        f"    a = {draw(st.integers(1, 9))};",
        f"    b = {draw(st.integers(1, 9))};",
    ]
    redirect_rate = draw(st.sampled_from([0, 3, 7, 50]))
    body = []
    if redirect_rate:
        body.append(
            f"if (i > {draw(st.integers(0, 30))} && i % {redirect_rate} == 0)"
            " { w = &p; } else { w = &alt; }"
        )
    body.append("out = out + *(*q);")
    body.append(f"*w = &{draw(st.sampled_from(['b', 'c']))};")
    if draw(st.booleans()):
        body.append("out = out + *(*q) % 11;")
    if draw(st.booleans()):
        body.append(f"c = c + i % {draw(st.integers(2, 6))};")
    loop = "\n        ".join(body)
    lines.append(
        f"""    int i = 0;
    while (i < n % 67) {{
        {loop}
        i = i + 1;
    }}"""
    )
    lines.append("    print(out); print(*p); print(c); print(d);")
    lines.append("    return out % 256;")
    return _CHAIN_PRELUDE + "int main(int n) {\n" + "\n".join(lines) + "\n}\n"


@given(random_chain_program(), st.integers(0, 130), st.integers(0, 130))
@settings(
    max_examples=25,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow, HealthCheck.data_too_large],
)
def test_random_pointer_chains_agree_with_cascade(source, ref_arg, train_arg):
    """Cascade promotion (rounds=2) on random pointer-chain programs,
    trained and measured on independent inputs."""
    from repro.pipeline import CompilerOptions, OptLevel, SpecMode, compile_source, run_program

    ref = run_program(source, [ref_arg])
    for rounds in (1, 2):
        out = compile_source(
            source,
            CompilerOptions(
                opt_level=OptLevel.O3, spec_mode=SpecMode.PROFILE, rounds=rounds
            ),
            train_args=[train_arg],
        )
        ires = out.interpret([ref_arg])
        assert ires.output == ref.output, f"interp diverged (rounds={rounds})"
        mres = out.run([ref_arg])
        assert mres.output == ref.output, f"machine diverged (rounds={rounds})"
        assert mres.exit_value == ref.exit_value


# ---------------------------------------------------------------------------
# chaos-generator programs as hypothesis inputs
# ---------------------------------------------------------------------------


@given(st.integers(0, 2**32), st.integers(0, 120), st.integers(0, 120))
@settings(
    max_examples=25,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
def test_chaos_generated_programs_agree_across_all_modes(seed, ref_arg, train_arg):
    """The seeded chaos generator feeds the same flagship property the
    hypothesis grammars do — one generator, two harnesses."""
    from repro.chaos import generate_program

    program = generate_program(seed)
    assert_all_modes_agree(
        program.source, [ref_arg], train_args=[train_arg]
    )


@given(st.integers(0, 2**32), st.integers(0, 120), st.integers(0, 120))
@settings(
    max_examples=25,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
def test_recovery_counters_consistent(seed, ref_arg, train_arg):
    """Accounting invariant: every retired ld.c/chk.a probes the ALAT
    exactly once, so simulator check counters and ALAT stats must agree
    — including under fault injection, where extra misses come from
    injected entry loss but never from double counting."""
    from repro.chaos import FaultInjector, FaultPlan, generate_program
    from repro.machine.cpu import Simulator
    from repro.pipeline import CompilerOptions, OptLevel, SpecMode, compile_source

    program = generate_program(seed)
    out = compile_source(
        program.source,
        CompilerOptions(
            opt_level=OptLevel.O3, spec_mode=SpecMode.PROFILE, fallback=False
        ),
        train_args=[train_arg],
    )
    for plan in (None, FaultPlan(name="stress", seed=seed,
                                 spurious_invalidate_rate=0.4,
                                 drop_alloc_rate=0.2, flush_rate=0.01)):
        injector = FaultInjector(plan) if plan is not None else None
        sim = Simulator(out.program, out.options.machine, injector=injector)
        result = sim.run([ref_arg])
        alat, counters = result.alat_stats, result.counters
        assert alat.check_hits + alat.check_misses == counters.check_instructions
        assert counters.check_failures == alat.check_misses
