"""The `python -m repro` command-line driver."""

import pytest

from repro.__main__ import build_parser, main

DEMO = """
int a; int b;
int *p;
int main(int n) {
    if (n > 100) { p = &a; } else { p = &b; }
    a = 7;
    int s = 0;
    for (int i = 0; i < n; i += 1) { s += a; *p = s; s += a; }
    print(s);
    return s % 10;
}
"""


@pytest.fixture
def demo_file(tmp_path):
    path = tmp_path / "demo.mc"
    path.write_text(DEMO)
    return str(path)


def run_cli(capsys, argv):
    code = main(argv)
    captured = capsys.readouterr()
    return code, captured.out, captured.err


def test_basic_run(demo_file, capsys):
    code, out, _err = run_cli(capsys, [demo_file, "--args", "50"])
    assert out.splitlines() == ["700"]
    assert code == 0


def test_verify_mode(demo_file, capsys):
    code, out, err = run_cli(
        capsys,
        [demo_file, "--args", "50", "--train-args", "10",
         "--opt", "3", "--spec", "profile", "--verify"],
    )
    assert "verify: OK" in err
    assert out.splitlines() == ["700"]


def test_counters_output(demo_file, capsys):
    _code, _out, err = run_cli(
        capsys, [demo_file, "--args", "20", "--counters"]
    )
    assert "cpu_cycles" in err and "retired_loads" in err


def test_dump_ir(demo_file, capsys):
    _code, out, _err = run_cli(
        capsys,
        [demo_file, "--args", "10", "--spec", "heuristic", "--dump-ir"],
    )
    assert "func int main" in out


def test_dump_asm(demo_file, capsys):
    _code, out, _err = run_cli(capsys, [demo_file, "--args", "10", "--dump-asm"])
    assert "main:" in out and "ret" in out


def test_exit_code_propagates(demo_file, capsys):
    code, _out, _err = run_cli(capsys, [demo_file, "--args", "3"])
    # s = 3 iterations of (s += 7; *p = s; s += 7) with a=7 constant
    assert code == main([demo_file, "--args", "3"]) % 256


def test_parser_rejects_bad_opt(demo_file):
    with pytest.raises(SystemExit):
        build_parser().parse_args([demo_file, "--opt", "9"])


def test_missing_file_is_one_line_error_exit_2(tmp_path, capsys):
    missing = str(tmp_path / "nope.mc")
    code, out, err = run_cli(capsys, [missing, "--args", "5"])
    assert code == 2
    assert out == ""
    assert len(err.strip().splitlines()) == 1
    assert "nope.mc" in err


def test_unreadable_directory_is_one_line_error_exit_2(tmp_path, capsys):
    code, _out, err = run_cli(capsys, [str(tmp_path), "--args", "5"])
    assert code == 2
    assert len(err.strip().splitlines()) == 1
