"""SSAPRE register promotion: classical and speculative behaviour at
the IR level, mirroring the paper's Figures 1, 2, 3, 6, 7."""

import pytest

from repro.alias import AliasManager
from repro.ir.expr import Load, VarRead
from repro.ir.interp import run_module
from repro.ir.stmt import Assign, ConditionalReload, InvalidateCheck, SpecFlag, Store
from repro.minic import compile_to_ir
from repro.pre import run_load_pre
from repro.pre.driver import split_critical_edges
from repro.pre.scalarrepl import promote_module_scalars, promote_unaliased_scalars
from repro.pre.ssapre import PREOptions
from repro.speculation.profile import collect_alias_profile, make_profile_decider


def optimize(src, spec=False, softcheck=False, decider=None, args_for_profile=None):
    module = compile_to_ir(src)
    if decider is None and spec:
        profile, _ = collect_alias_profile(module, args_for_profile or [])
        decider = make_profile_decider(profile)
    promote_module_scalars(module)
    am = AliasManager(module)
    opts = PREOptions(speculative=spec, softcheck=softcheck)
    stats = {}
    for fn in module.iter_functions():
        stats[fn.name] = run_load_pre(fn, module, am, opts, spec_decider=decider if spec else None)
    return module, stats


def count_memory_reads(module, fn_name="main"):
    """Static count of memory-reading expressions left in the IR."""
    fn = module.function(fn_name)
    n = 0
    for stmt in fn.iter_stmts():
        if isinstance(stmt, Assign) and stmt.spec_flag is not SpecFlag.NONE:
            continue  # protocol loads
        for e in stmt.walk_exprs():
            if isinstance(e, Load):
                n += 1
            elif isinstance(e, VarRead) and e.var.has_memory_home:
                n += 1
    return n


def flags_in(module, fn_name="main"):
    out = []
    for stmt in module.function(fn_name).iter_stmts():
        if isinstance(stmt, Assign) and stmt.spec_flag is not SpecFlag.NONE:
            out.append(stmt.spec_flag)
    return out


# -- scalar replacement ------------------------------------------------------


def test_scalarrepl_promotes_unaliased_locals():
    module = compile_to_ir("int main() { int x = 1; int y = x + 1; return y; }")
    promoted = promote_unaliased_scalars(module.main)
    assert {v.name for v in promoted} >= {"x", "y"}
    assert all(v.is_temp for v in promoted)


def test_scalarrepl_skips_address_taken():
    module = compile_to_ir(
        "int main() { int x = 1; int *p = &x; *p = 2; return x; }"
    )
    promoted = promote_unaliased_scalars(module.main)
    assert "x" not in {v.name for v in promoted}
    assert "p" in {v.name for v in promoted}


# -- classical PRE -----------------------------------------------------------


def test_redundant_global_load_eliminated():
    src = """
    int g;
    int main() {
        g = 3;
        int x = g + 1;
        int y = g + 2;
        print(x + y);
        return 0;
    }
    """
    module, stats = optimize(src)
    assert stats["main"].reloads >= 1
    res = run_module(module, [])
    assert res.output == ["9"]


def test_no_promotion_across_real_store():
    src = """
    int a;
    int *p;
    int main() {
        p = &a;
        int x = a;
        *p = 9;
        int y = a;
        print(x); print(y);
        return 0;
    }
    """
    module, stats = optimize(src)
    res = run_module(module, [])
    assert res.output == ["0", "9"]
    # p certainly points to a: the second load cannot reuse the first
    assert stats["main"].speculative_reloads == 0


def test_store_load_forwarding_left_occurrence():
    """Figure 1(b): leading reference is a write."""
    src = """
    int g;
    int main(int n) {
        g = n * 2;
        print(g);
        print(g + 1);
        return 0;
    }
    """
    module, stats = optimize(src)
    assert stats["main"].left_saves >= 1
    assert run_module(module, [5]).output == ["10", "11"]
    # loads of g after the store were forwarded
    assert count_memory_reads(module) <= 1  # only the store's target


def test_partial_redundancy_insertion():
    """Classic PRE: load available on one path, inserted on the other."""
    src = """
    int g;
    int main(int n) {
        int x = 0;
        if (n > 0) { x = g; }
        int y = g;
        print(x + y);
        return 0;
    }
    """
    module, stats = optimize(src)
    assert run_module(module, [1]).output == ["0"]
    assert run_module(module, [-1]).output == ["0"]
    # either an insert happened or the load stayed; both are legal, but
    # with a down-safe join the classical transform should fire:
    assert stats["main"].reloads >= 1


def test_loop_invariant_hoisting_classical():
    """A global unchanged in the loop hoists without speculation."""
    src = """
    int g;
    int main(int n) {
        g = 4;
        int s = 0;
        int i = 0;
        while (i < n) { s = s + g; i = i + 1; }
        print(s);
        return 0;
    }
    """
    module, stats = optimize(src)
    assert run_module(module, [10]).output == ["40"]
    assert stats["main"].reloads >= 1


# -- speculative PRE -----------------------------------------------------------


SPEC_SRC = """
int a; int b;
int *p;
int main(int n) {
    int s = 0;
    int i = 0;
    if (n > 100) { p = &a; } else { p = &b; }
    a = 7;
    while (i < n) {
        s = s + a;
        *p = s;
        s = s + a;
        i = i + 1;
    }
    print(s); print(a); print(b);
    return 0;
}
"""


def test_speculative_promotion_generates_ld_flags():
    module, stats = optimize(SPEC_SRC, spec=True, args_for_profile=[10])
    flags = flags_in(module)
    assert any(f.is_advanced_load for f in flags)
    assert any(f.is_check for f in flags)
    assert stats["main"].checks >= 1
    assert stats["main"].speculative_reloads >= 1


def test_speculative_output_correct_when_profile_holds():
    ref = run_module(compile_to_ir(SPEC_SRC), [10])
    module, _ = optimize(SPEC_SRC, spec=True, args_for_profile=[10])
    assert run_module(module, [10]).output == ref.output


def test_speculative_output_correct_on_misspeculation():
    """Train says p->b; ref takes the p->a path: checks must repair."""
    ref = run_module(compile_to_ir(SPEC_SRC), [200])
    module, _ = optimize(SPEC_SRC, spec=True, args_for_profile=[10])
    assert run_module(module, [200]).output == ref.output


def test_speculation_beats_classical_statically():
    base_module, base_stats = optimize(SPEC_SRC, spec=False)
    spec_module, spec_stats = optimize(SPEC_SRC, spec=True, args_for_profile=[10])
    assert spec_stats["main"].reloads > base_stats["main"].reloads


def test_loop_invariant_speculative_hoist_figure3():
    """Figure 3: load hoisted out of a loop containing an aliasing
    store; the inserted load is control+data speculative (ld.sa)."""
    src = """
    int a; int b;
    int *q;
    int main(int n) {
        if (n > 100) { q = &a; } else { q = &b; }
        a = 5;
        int s = 0;
        int i = 0;
        while (i < n) {
            *q = i;
            s = s + a;
            i = i + 1;
        }
        print(s);
        return 0;
    }
    """
    module, stats = optimize(src, spec=True, args_for_profile=[10])
    flags = flags_in(module)
    assert SpecFlag.LD_SA in flags or SpecFlag.LD_A in flags
    assert any(f.is_check for f in flags)
    # correctness on both the trained and the mis-speculated input
    for n in (10, 200):
        ref = run_module(compile_to_ir(src), [n])
        assert run_module(module, [n]).output == ref.output


def test_invala_partial_redundancy_figure2():
    """Figure 2: partially redundant load across a speculated store,
    handled with invala.e + ld.c at the use."""
    src = """
    int a; int b;
    int *q;
    int main(int n) {
        if (n > 100) { q = &a; } else { q = &b; }
        int x = 0;
        int y = 0;
        if (n % 2 == 0) { x = a + 1; }
        *q = n;
        if (n % 3 == 0) { y = a + 3; }
        print(x); print(y);
        return 0;
    }
    """
    module, stats = optimize(src, spec=True, args_for_profile=[6])
    invalas = [
        s for s in module.main.iter_stmts() if isinstance(s, InvalidateCheck)
    ]
    assert stats["main"].invalidates == len(invalas)
    for n in (6, 4, 9, 7, 102, 200):
        ref = run_module(compile_to_ir(src), [n])
        assert run_module(module, [n]).output == ref.output, n


def test_indirect_load_promotion():
    """Promotion of *p itself (the paper's 'indirect references')."""
    src = """
    struct n { int v; struct n *next; };
    int g;
    int main(int k) {
        struct n *node = alloc(struct n, 1);
        node->v = k;
        int s = 0;
        int i = 0;
        while (i < k) {
            s = s + node->v;
            g = s;
            i = i + 1;
        }
        print(s);
        return 0;
    }
    """
    module, stats = optimize(src, spec=True, args_for_profile=[5])
    by_kind = stats["main"].reloads_by_kind()
    assert by_kind["indirect"] >= 1
    for k in (5, 12):
        ref = run_module(compile_to_ir(src), [k])
        assert run_module(module, [k]).output == ref.output


# -- software checks -----------------------------------------------------------


def test_softcheck_inserts_conditional_reloads():
    module, stats = optimize(
        SPEC_SRC, spec=True, softcheck=True, args_for_profile=[10]
    )
    reloads = [
        s for s in module.main.iter_stmts() if isinstance(s, ConditionalReload)
    ]
    assert len(reloads) >= 1
    # no ALAT flags in software mode
    assert not flags_in(module)
    for n in (10, 200):
        ref = run_module(compile_to_ir(SPEC_SRC), [n])
        assert run_module(module, [n]).output == ref.output


def test_critical_edge_splitting():
    src = """
    int main(int n) {
        int s = 0;
        while (n > 0) {
            if (n % 2) { s += 1; }
            n -= 1;
        }
        return s;
    }
    """
    module = compile_to_ir(src)
    fn = module.main
    n_split = split_critical_edges(fn)
    assert n_split >= 1
    for block in fn.blocks:
        if len(block.successors()) > 1:
            for succ in block.successors():
                assert len(succ.preds) == 1, "critical edge survived"
