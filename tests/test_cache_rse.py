"""Cache hierarchy and Register Stack Engine models."""

from repro.machine.cache import CacheConfig, CacheHierarchy, CacheLevelConfig
from repro.machine.rse import RegisterStackEngine, RSEConfig


# -- cache -----------------------------------------------------------------


def test_first_access_misses_then_hits():
    cache = CacheHierarchy()
    cold = cache.load_latency(0x4000)
    warm = cache.load_latency(0x4000)
    assert cold == cache.config.memory_latency
    assert warm == cache.config.l1.hit_latency


def test_line_granularity():
    cache = CacheHierarchy()
    cache.load_latency(0x4000)
    # same 8-word line: hit
    assert cache.load_latency(0x4007) == cache.config.l1.hit_latency
    # next line: miss
    assert cache.load_latency(0x4008) == cache.config.memory_latency


def test_fp_loads_bypass_l1():
    cache = CacheHierarchy()
    cache.load_latency(0x4000, is_float=True)
    warm = cache.load_latency(0x4000, is_float=True)
    assert warm == cache.config.fp_min_latency == 9


def test_int_after_fp_access_misses_l1():
    cache = CacheHierarchy()
    cache.load_latency(0x4000, is_float=True)  # filled L2 only
    lat = cache.load_latency(0x4000, is_float=False)
    assert lat == cache.config.l2.hit_latency


def test_l1_capacity_eviction():
    config = CacheConfig(
        l1=CacheLevelConfig(lines=4, associativity=2, hit_latency=2),
        l2=CacheLevelConfig(lines=64, associativity=4, hit_latency=9),
    )
    cache = CacheHierarchy(config)
    # fill one L1 set (2 sets -> same set = every other line)
    line = config.line_words
    sets = config.l1.sets
    addr = lambda i: i * line * sets  # noqa: E731  all in set 0
    cache.load_latency(addr(0))
    cache.load_latency(addr(1))
    cache.load_latency(addr(2))  # evicts addr(0) from L1
    lat = cache.load_latency(addr(0))
    assert lat == config.l2.hit_latency  # still in L2


def test_store_touch_prefills():
    cache = CacheHierarchy()
    cache.store_touch(0x5000)
    assert cache.load_latency(0x5000) == cache.config.l1.hit_latency


def test_stats_accumulate():
    cache = CacheHierarchy()
    cache.load_latency(0x6000)
    cache.load_latency(0x6000)
    assert cache.stats.l1_misses == 1 and cache.stats.l1_hits == 1


# -- RSE ----------------------------------------------------------------------


def test_no_spills_under_capacity():
    rse = RegisterStackEngine(RSEConfig(physical_registers=96))
    assert rse.call(30) == 0
    assert rse.call(30) == 0
    assert rse.call(30) == 0
    assert rse.stats.rse_cycles == 0


def test_overflow_spills_oldest():
    rse = RegisterStackEngine(RSEConfig(physical_registers=64, spill_cost=1))
    rse.call(30)
    rse.call(30)
    cycles = rse.call(30)  # 90 > 64: must spill 26 registers
    assert cycles == 26
    assert rse.stats.spilled_registers == 26


def test_return_fills_spilled_frames():
    rse = RegisterStackEngine(RSEConfig(physical_registers=64))
    rse.call(30)
    rse.call(30)
    rse.call(30)
    rse.ret()
    # caller frame had registers in backing store -> filled on return
    total = rse.ret()
    assert rse.stats.filled_registers > 0
    assert rse.stats.rse_cycles == rse.stats.spilled_registers + rse.stats.filled_registers


def test_deep_recursion_traffic_grows():
    shallow = RegisterStackEngine(RSEConfig(physical_registers=32))
    for _ in range(4):
        shallow.call(10)
    shallow_traffic = shallow.stats.rse_cycles

    deep = RegisterStackEngine(RSEConfig(physical_registers=32))
    for _ in range(40):
        deep.call(10)
    assert deep.stats.rse_cycles > shallow_traffic


def test_bigger_frames_mean_more_traffic():
    """Promotion grows frames; RSE traffic should grow monotonically —
    the effect Figure 11 quantifies."""
    def traffic(frame_size):
        rse = RegisterStackEngine(RSEConfig(physical_registers=96))
        for _ in range(8):
            rse.call(frame_size)
        for _ in range(8):
            rse.ret()
        return rse.stats.rse_cycles

    assert traffic(10) <= traffic(20) <= traffic(40)


def test_depth_tracking():
    rse = RegisterStackEngine()
    rse.call(5)
    rse.call(5)
    assert rse.depth == 2
    rse.ret()
    assert rse.depth == 1
    assert rse.stats.max_depth == 2
