"""Code generator contract: register assignment, frame layout, calling
convention, speculation lowering."""

import pytest

from repro.errors import CodegenError
from repro.minic import compile_to_ir
from repro.pipeline import CompilerOptions, OptLevel, SpecMode, compile_source
from repro.target.codegen import generate_machine_code, layout_globals
from repro.target.isa import (
    ChkA,
    InvalaE,
    Label,
    Ld,
    LdC,
    Lea,
    LoadKind,
    PredLd,
    Region,
    St,
)


def instrs_of(src, fn="main", **opts):
    module = compile_to_ir(src)
    program = generate_machine_code(module)
    return program.function(fn).instrs


def test_global_layout_sequential_and_initialised():
    src = "int a = 5; int arr[3]; float f = 2.5; int main() { return 0; }"
    module = compile_to_ir(src)
    addrs, data = layout_globals(module)
    ordered = [addrs[g.id] for g in module.globals]
    assert ordered == sorted(ordered)
    assert data[addrs[module.find_global("a").id]] == 5
    assert data[addrs[module.find_global("f").id]] == 2.5
    # arr occupies 3 words between a and f
    assert addrs[module.find_global("f").id] - addrs[module.find_global("arr").id] == 3


def test_param_in_register_without_address():
    src = "int main(int n) { return n + 1; }"
    body = instrs_of(src)
    # no frame traffic for a non-address-taken parameter
    assert not any(isinstance(i, (Ld, St)) for i in body)


def test_address_taken_param_spilled_to_frame():
    src = """
    int main(int n) {
        int *p = &n;
        *p = *p + 1;
        return n;
    }
    """
    body = instrs_of(src)
    stores = [i for i in body if isinstance(i, St)]
    assert stores, "address-taken parameter must be spilled on entry"
    leas = [i for i in body if isinstance(i, Lea) and i.region is Region.FRAME]
    assert leas


def test_global_access_uses_lea_ld():
    src = "int g; int main() { return g; }"
    body = instrs_of(src)
    assert any(isinstance(i, Lea) and i.region is Region.GLOBAL for i in body)
    assert any(isinstance(i, Ld) and not i.indirect for i in body)


def test_indirect_flag_set_for_pointer_loads():
    src = """
    int main() {
        int *h = alloc(int, 2);
        h[0] = 3;
        return h[0];
    }
    """
    body = instrs_of(src)
    loads = [i for i in body if isinstance(i, Ld)]
    assert any(i.indirect for i in loads)


def test_float_loads_flagged():
    src = "float f; int main() { return (int)f; }"
    body = instrs_of(src)
    load = next(i for i in body if isinstance(i, Ld))
    assert load.is_float


def test_speculation_lowering_produces_alat_ops():
    src = """
    int a; int b;
    int *p;
    int main(int n) {
        if (n > 100) { p = &a; } else { p = &b; }
        a = 1;
        int s = 0;
        for (int i = 0; i < n; i += 1) { s += a; *p = s; s += a; }
        return s % 9;
    }
    """
    out = compile_source(
        src,
        CompilerOptions(opt_level=OptLevel.O3, spec_mode=SpecMode.PROFILE),
        train_args=[5],
    )
    body = out.program.function("main").instrs
    kinds = {i.kind for i in body if isinstance(i, Ld)}
    assert LoadKind.ADVANCED in kinds or LoadKind.SPEC_ADVANCED in kinds
    assert any(isinstance(i, LdC) for i in body)


def test_chk_a_gets_recovery_block():
    src = """
    int a; int b; int c;
    int *p; int *other; int **q; int **w;
    int main(int n) {
        q = &p; p = &a; other = &c;
        w = &other;
        if (n == -1) { w = &p; }
        a = 3;
        int s = 0;
        for (int i = 0; i < n; i += 1) {
            s = s + *(*q);
            *w = &b;
            s = s + *(*q);
        }
        print(s);
        return 0;
    }
    """
    out = compile_source(
        src,
        CompilerOptions(opt_level=OptLevel.O3, spec_mode=SpecMode.PROFILE, rounds=2),
        train_args=[8],
    )
    body = out.program.function("main").instrs
    chks = [i for i in body if isinstance(i, ChkA)]
    assert chks, "cascade must lower to chk.a"
    labels = {i.name for i in body if isinstance(i, Label)}
    for chk in chks:
        assert chk.recovery_label in labels, "recovery block must exist"


def test_invala_lowering():
    src = """
    int a; int b;
    int *r;
    int main(int n) {
        if (n > 100) { r = &a; } else { r = &b; }
        int x = 0;
        int y = 0;
        if (n % 2 == 0) { x = a + 1; }
        *r = n;
        if (n % 3 == 0) { y = a + 3; }
        print(x); print(y);
        return 0;
    }
    """
    out = compile_source(
        src,
        CompilerOptions(opt_level=OptLevel.O3, spec_mode=SpecMode.PROFILE),
        train_args=[6],
    )
    body = out.program.function("main").instrs
    assert any(isinstance(i, InvalaE) for i in body)


def test_softcheck_lowering_predld():
    src = """
    int a; int b;
    int *p;
    int main(int n) {
        if (n > 100) { p = &a; } else { p = &b; }
        a = 1;
        int s = 0;
        for (int i = 0; i < n; i += 1) { s += a; *p = s; s += a; }
        return s % 9;
    }
    """
    out = compile_source(
        src,
        CompilerOptions(opt_level=OptLevel.O3, spec_mode=SpecMode.SOFTWARE),
        train_args=[5],
    )
    body = out.program.function("main").instrs
    assert any(isinstance(i, PredLd) for i in body)
    assert not any(isinstance(i, LdC) for i in body)


def test_nregs_covers_all_registers():
    src = """
    int helper(int a, int b, int c) { return a * b + c; }
    int main(int n) { return helper(n, n + 1, n + 2); }
    """
    module = compile_to_ir(src)
    program = generate_machine_code(module)
    for mf in program.functions.values():
        for instr in mf.instrs:
            for reg in list(instr.reads()) + list(instr.writes()):
                assert reg < mf.nregs, f"{mf.name}: r{reg} >= nregs {mf.nregs}"


def test_missing_main_rejected():
    from repro.ir.module import Module

    with pytest.raises(CodegenError):
        generate_machine_code(Module("empty_with_none"))
