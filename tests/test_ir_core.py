"""IR core: types, expressions, builder, verifier."""

import pytest

from repro.errors import IRError, VerificationError
from repro.ir import (
    BOOL,
    FLOAT,
    INT,
    VOID,
    ArrayType,
    Assign,
    BinOp,
    BinOpKind,
    ConstInt,
    FunctionBuilder,
    Jump,
    Load,
    ModuleBuilder,
    PointerType,
    Return,
    SpecFlag,
    StructType,
    VarRead,
    verify_module,
)
from repro.ir.expr import (
    ConstFloat,
    UnOp,
    UnOpKind,
    clone_expr,
    expr_lexical_key,
    exprs_syntactically_equal,
    walk_expr,
)
from repro.ir.function import Function
from repro.ir.stmt import CondBranch, Store
from repro.ir.symbols import StorageClass, Variable
from repro.ir.types import WORD_SIZE, element_type, types_compatible


# -- types ---------------------------------------------------------------


def test_scalar_sizes():
    assert INT.size() == WORD_SIZE
    assert FLOAT.size() == WORD_SIZE
    assert PointerType(INT).size() == WORD_SIZE
    assert VOID.size() == 0


def test_array_size():
    assert ArrayType(INT, 10).size_words() == 10
    assert ArrayType(ArrayType(INT, 3), 2).size_words() == 6


def test_negative_array_count_rejected():
    with pytest.raises(IRError):
        ArrayType(INT, -1)


def test_struct_layout_offsets():
    st = StructType("s").define([("a", INT), ("b", FLOAT), ("c", PointerType(INT))])
    assert [f.offset for f in st.fields] == [0, WORD_SIZE, 2 * WORD_SIZE]
    assert st.size_words() == 3


def test_struct_duplicate_field_rejected():
    with pytest.raises(IRError):
        StructType("s").define([("a", INT), ("a", INT)])


def test_struct_use_before_define():
    st = StructType("late")
    with pytest.raises(IRError):
        st.size()


def test_struct_nominal_typing():
    a = StructType("a").define([("x", INT)])
    b = StructType("b").define([("x", INT)])
    assert not types_compatible(a, b)
    assert types_compatible(PointerType(a), PointerType(a))


def test_element_type():
    assert element_type(PointerType(FLOAT)) == FLOAT
    assert element_type(ArrayType(INT, 2)) == INT
    with pytest.raises(IRError):
        element_type(INT)


# -- expressions --------------------------------------------------------


def test_binop_result_types():
    assert BinOp(BinOpKind.ADD, ConstInt(1), ConstInt(2)).type == INT
    assert BinOp(BinOpKind.ADD, ConstInt(1), ConstFloat(2.0)).type == FLOAT
    assert BinOp(BinOpKind.LT, ConstInt(1), ConstInt(2)).type == BOOL


def test_pointer_arithmetic_typing():
    p = Variable("p", PointerType(INT), StorageClass.TEMP)
    add = BinOp(BinOpKind.ADD, VarRead(p), ConstInt(1))
    assert add.type == PointerType(INT)
    with pytest.raises(IRError):
        BinOp(BinOpKind.MUL, VarRead(p), ConstInt(2))


def test_load_requires_pointer():
    with pytest.raises(IRError):
        Load(ConstInt(5), INT)


def test_walk_expr_preorder():
    e = BinOp(BinOpKind.ADD, ConstInt(1), UnOp(UnOpKind.NEG, ConstInt(2)))
    kinds = [type(n).__name__ for n in walk_expr(e)]
    assert kinds == ["BinOp", "ConstInt", "UnOp", "ConstInt"]


def test_clone_expr_fresh_eids():
    p = Variable("p", PointerType(INT), StorageClass.TEMP)
    e = Load(BinOp(BinOpKind.ADD, VarRead(p), ConstInt(4)), INT)
    c = clone_expr(e)
    assert exprs_syntactically_equal(e, c)
    assert {n.eid for n in walk_expr(e)}.isdisjoint({n.eid for n in walk_expr(c)})


def test_lexical_keys_group_equal_expressions():
    p = Variable("p", PointerType(INT), StorageClass.TEMP)
    a = Load(BinOp(BinOpKind.ADD, VarRead(p), ConstInt(4)), INT)
    b = Load(BinOp(BinOpKind.ADD, VarRead(p), ConstInt(4)), INT)
    c = Load(BinOp(BinOpKind.ADD, VarRead(p), ConstInt(8)), INT)
    assert expr_lexical_key(a) == expr_lexical_key(b)
    assert expr_lexical_key(a) != expr_lexical_key(c)


# -- builder + verifier -----------------------------------------------------


def build_trivial_module():
    mb = ModuleBuilder("m")
    g = mb.global_var("g", INT, init=3)
    fb = mb.function("main", [], INT)
    fb.ret(fb.read(g))
    fb.finish()
    return mb.finish()


def test_builder_roundtrip():
    module = build_trivial_module()
    verify_module(module)
    assert module.main.return_type == INT


def test_verifier_catches_unterminated_block():
    mb = ModuleBuilder("m")
    fb = mb.function("main", [], INT)
    fb.emit(Assign(fb.temp(INT), ConstInt(1)))
    with pytest.raises(IRError):
        fb.finish()


def test_verifier_catches_type_mismatch():
    mb = ModuleBuilder("m")
    fb = mb.function("main", [], INT)
    t = fb.temp(PointerType(INT))
    fb.emit(Assign(t, ConstInt(7)))  # int into pointer temp
    fb.ret(0)
    fb.finish()
    with pytest.raises(VerificationError):
        verify_module(mb.finish())


def test_verifier_catches_foreign_block_target():
    mb = ModuleBuilder("m")
    fb = mb.function("main", [], INT)
    other = Function("other", [])
    foreign = other.new_block()
    foreign.append(Return(ConstInt(0)))
    fb.emit(Jump(foreign))
    fb.fn.compute_preds()
    with pytest.raises(VerificationError):
        verify_module(mb.finish())


def test_verifier_catches_check_flag_on_non_temp():
    mb = ModuleBuilder("m")
    g = mb.global_var("g", INT)
    fb = mb.function("main", [], INT)
    with pytest.raises(IRError):
        # constructing the statement itself is fine; verification fails
        stmt = Assign(g, ConstInt(1), spec_flag=SpecFlag.LD_C)
        fb.emit(stmt)
        fb.ret(0)
        fb.finish()
        verify_module(mb.finish())


def test_verifier_catches_stale_preds():
    module = build_trivial_module()
    main = module.main
    main.entry.preds.append(main.entry)  # corrupt
    with pytest.raises(VerificationError):
        verify_module(module)


def test_split_edge():
    mb = ModuleBuilder("m")
    fb = mb.function("main", [], INT)
    then_b = fb.block("then")
    join = fb.block("join")
    fb.branch(fb.binop(BinOpKind.LT, 1, 2), then_b, join)
    fb.set_block(then_b)
    fb.jump(join)
    fb.set_block(join)
    fb.ret(0)
    fn = fb.finish()
    n_blocks = len(fn.blocks)
    entry = fn.entry
    mid = fn.split_edge(entry, join)
    assert len(fn.blocks) == n_blocks + 1
    assert mid in join.preds and entry not in join.preds
    verify_module(mb.finish())


def test_recovery_requires_branching_check():
    t = Variable("t", INT, StorageClass.TEMP)
    with pytest.raises(IRError):
        Assign(t, ConstInt(1), spec_flag=SpecFlag.LD_C, recovery=[])
