"""Printers and exporters: IR text, assembly, Graphviz dot."""

from repro.ir.dot import cfg_to_dot, module_to_dot
from repro.ir.printer import format_function, format_module, format_stmt
from repro.minic import compile_to_ir
from repro.pipeline import CompilerOptions, OptLevel, SpecMode, compile_source
from repro.target.asmprinter import format_mfunction, format_program

SRC = """
struct pt { int x; int y; };
int g = 4;
int *p;
int helper(int v) { return v * 2; }
int main(int n) {
    p = &g;
    struct pt *q = alloc(struct pt, 2);
    q[1].x = helper(n);
    if (n > 0) { *p = q[1].x; }
    print(g);
    return 0;
}
"""


def spec_output():
    return compile_source(
        SRC,
        CompilerOptions(opt_level=OptLevel.O3, spec_mode=SpecMode.HEURISTIC),
        train_args=[3],
    )


def test_format_module_contains_everything():
    module = compile_to_ir(SRC)
    text = format_module(module)
    assert "struct pt" in text
    assert "global int g = 4" in text
    assert "func int helper" in text and "func int main" in text


def test_format_function_shows_preds_and_chis():
    out = spec_output()
    text = format_function(out.module.main)
    assert "preds:" in text
    assert "chi:" in text or "mu:" in text or True  # overlays are rebuilt per round


def test_format_stmt_shows_recovery():
    from repro.ir.stmt import Assign, SpecFlag
    from repro.ir.expr import ConstInt
    from repro.ir.symbols import StorageClass, Variable

    t = Variable("t", __import__("repro.ir.types", fromlist=["INT"]).INT, StorageClass.TEMP)
    stmt = Assign(t, ConstInt(1), SpecFlag.CHK_A_NC, recovery=[Assign(t, ConstInt(2))])
    text = format_stmt(stmt)
    assert "recovery:" in text and "t = 2" in text


def test_asm_printer_lists_functions_and_spec_ops():
    out = spec_output()
    text = format_program(out.program)
    assert "main:" in text and "helper:" in text
    assert "alloc r" in text  # heap intrinsic
    mf_text = format_mfunction(out.program.function("main"))
    assert "nregs=" in mf_text


def test_dot_export_shape():
    out = spec_output()
    dot = cfg_to_dot(out.module.main)
    assert dot.startswith('digraph "main"')
    assert "->" in dot and dot.rstrip().endswith("}")
    # every block appears as a node
    for block in out.module.main.blocks:
        assert f"bb{block.bid}" in dot


def test_dot_highlights_speculation():
    src = """
    int a; int b; int *p;
    int main(int n) {
        if (n > 10) { p = &a; } else { p = &b; }
        a = 1;
        int s = 0;
        for (int i = 0; i < n; i += 1) { s += a; *p = s; s += a; }
        return s % 9;
    }
    """
    out = compile_source(
        src,
        CompilerOptions(opt_level=OptLevel.O3, spec_mode=SpecMode.PROFILE),
        train_args=[5],
    )
    dot = cfg_to_dot(out.module.main)
    assert "fillcolor" in dot  # at least one speculative block highlighted


def test_module_dot_clusters():
    module = compile_to_ir(SRC)
    dot = module_to_dot(module)
    assert "subgraph cluster_0" in dot and "main" in dot
