"""Parser unit tests: AST shapes and syntax errors."""

import pytest

from repro.errors import ParseError
from repro.minic import ast as A
from repro.minic.parser import parse_program


def parse_main_body(body: str):
    program = parse_program("int main() { %s }" % body)
    return program.functions[0].body


def first_expr(body: str):
    stmt = parse_main_body(body)[0]
    if isinstance(stmt, A.ExprStmt):
        return stmt.expr
    if isinstance(stmt, A.ReturnStmt):
        return stmt.value
    raise AssertionError(f"unexpected stmt {stmt}")


def test_program_structure():
    program = parse_program(
        """
        struct pt { int x; int y; };
        int g;
        float h[4];
        void f(int a) { }
        int main() { return 0; }
        """
    )
    assert [s.name for s in program.structs] == ["pt"]
    assert [g.name for g in program.globals] == ["g", "h"]
    assert program.globals[1].array_count == 4
    assert [f.name for f in program.functions] == ["f", "main"]


def test_struct_fields():
    program = parse_program("struct n { int v; struct n *next; };  int main() { return 0; }")
    fields = program.structs[0].fields
    assert fields[0][1] == "v"
    assert fields[1][0].is_struct and fields[1][0].pointer_depth == 1


def test_pointer_depth():
    program = parse_program("int **pp; int main() { return 0; }")
    assert program.globals[0].type_spec.pointer_depth == 2


def test_precedence_mul_over_add():
    expr = first_expr("return 1 + 2 * 3;")
    assert isinstance(expr, A.Binary) and expr.op == "+"
    assert isinstance(expr.right, A.Binary) and expr.right.op == "*"


def test_precedence_comparison_over_logical():
    expr = first_expr("return 1 < 2 && 3 < 4;")
    assert isinstance(expr, A.Binary) and expr.op == "&&"
    assert expr.left.op == "<" and expr.right.op == "<"


def test_left_associativity():
    expr = first_expr("return 10 - 3 - 2;")
    assert expr.op == "-" and expr.left.op == "-"
    assert expr.left.left.value == 10


def test_unary_chains():
    expr = first_expr("return --1;")
    assert isinstance(expr, A.Unary) and isinstance(expr.operand, A.Unary)


def test_deref_and_postfix():
    expr = first_expr("return *p->next;")  # *(p->next)
    assert isinstance(expr, A.Unary) and expr.op == "*"
    assert isinstance(expr.operand, A.Member) and expr.operand.arrow


def test_index_and_member_chain():
    expr = first_expr("return a[1].x;")
    assert isinstance(expr, A.Member) and not expr.arrow
    assert isinstance(expr.base, A.Index)


def test_cast_expression():
    expr = first_expr("return (int)1.5;")
    assert isinstance(expr, A.Cast) and expr.target == "int"


def test_paren_not_cast():
    expr = first_expr("return (1) + 2;")
    assert isinstance(expr, A.Binary)


def test_call_with_args():
    program = parse_program("int f(int a, int b) { return a; } int main() { return f(1, 2+3); }")
    expr = program.functions[1].body[0].value
    assert isinstance(expr, A.CallExpr) and len(expr.args) == 2


def test_alloc_expression():
    expr = first_expr("return alloc(int, 10) == 0;")
    assert isinstance(expr.left, A.AllocExpr)
    assert expr.left.elem_type.base == "int"


def test_compound_assignment_desugars():
    stmt = parse_main_body("x += 2;")[0]
    assert isinstance(stmt, A.AssignStmt)
    assert isinstance(stmt.value, A.Binary) and stmt.value.op == "+"


def test_if_else():
    stmt = parse_main_body("if (1) { print(1); } else print(2);")[0]
    assert isinstance(stmt, A.IfStmt)
    assert len(stmt.then_body) == 1 and len(stmt.else_body) == 1


def test_for_loop_parts():
    stmt = parse_main_body("for (int i = 0; i < 3; i += 1) print(i);")[0]
    assert isinstance(stmt, A.ForStmt)
    assert isinstance(stmt.init, A.DeclStmt)
    assert stmt.cond is not None and stmt.step is not None


def test_for_loop_empty_parts():
    stmt = parse_main_body("for (;;) break;")[0]
    assert stmt.init is None and stmt.cond is None and stmt.step is None


def test_while_and_control():
    body = parse_main_body("while (1) { break; continue; }")
    assert isinstance(body[0], A.WhileStmt)
    assert isinstance(body[0].body[0], A.BreakStmt)
    assert isinstance(body[0].body[1], A.ContinueStmt)


def test_local_array_decl():
    stmt = parse_main_body("int buf[8];")[0]
    assert isinstance(stmt, A.DeclStmt) and stmt.array_count == 8


@pytest.mark.parametrize(
    "bad",
    [
        "int main() { return 1 }",  # missing semicolon
        "int main() { if 1 { } }",  # missing parens
        "int main() { int x = ; }",
        "int main( { }",
        "struct s { int x; }",  # missing trailing semicolon
        "int a[x]; int main() { }",  # non-literal array size
        "int main() { foo(1, ; }",
    ],
)
def test_syntax_errors(bad):
    with pytest.raises(ParseError):
        parse_program(bad)


def test_error_position_reported():
    with pytest.raises(ParseError) as exc:
        parse_program("int main() {\n  return 1 2;\n}")
    assert exc.value.line == 2
