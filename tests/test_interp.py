"""Interpreter semantics: the reference oracle must implement C-like
semantics precisely (wrapping, truncating division, zero init, heap)."""

import pytest

from repro.errors import InterpError, InterpLimitExceeded
from repro.ir.interp import int_div, int_mod, run_module, wrap_int, format_value
from repro.minic import compile_to_ir


def run(src, args=None):
    return run_module(compile_to_ir(src), args or [])


def out(src, args=None):
    return run(src, args).output


# -- arithmetic helpers --------------------------------------------------


def test_wrap_int_positive_overflow():
    assert wrap_int(2**63) == -(2**63)


def test_wrap_int_negative_overflow():
    assert wrap_int(-(2**63) - 1) == 2**63 - 1


def test_wrap_int_identity():
    assert wrap_int(42) == 42
    assert wrap_int(-42) == -42


@pytest.mark.parametrize(
    "a,b,q,r",
    [
        (7, 2, 3, 1),
        (-7, 2, -3, -1),
        (7, -2, -3, 1),
        (-7, -2, 3, -1),
    ],
)
def test_c_division_truncates_toward_zero(a, b, q, r):
    assert int_div(a, b) == q
    assert int_mod(a, b) == r
    assert q * b + r == a


def test_division_by_zero_raises():
    with pytest.raises(InterpError):
        int_div(1, 0)
    with pytest.raises(InterpError):
        int_mod(1, 0)


def test_format_value_int_and_float():
    assert format_value(42) == "42"
    assert format_value(1.5) == "1.5"
    assert format_value(1 / 3) == "0.333333"


# -- program semantics ----------------------------------------------------


def test_zero_initialisation_of_locals_and_globals():
    assert out("int g; int main() { int x; print(g); print(x); return 0; }") == ["0", "0"]


def test_global_initializers():
    assert out("int g = 12; float h = 2.5; int main() { print(g); print(h); return 0; }") == ["12", "2.5"]


def test_arguments_reach_main():
    assert run("int main(int n) { return n * 2; }", [21]).exit_value == 42


def test_recursion():
    src = """
    int fib(int n) { if (n < 2) { return n; } return fib(n-1) + fib(n-2); }
    int main() { return fib(10); }
    """
    assert run(src).exit_value == 55


def test_mutual_recursion():
    src = """
    int is_even(int n) { if (n == 0) { return 1; } return is_odd(n - 1); }
    int is_odd(int n) { if (n == 0) { return 0; } return is_even(n - 1); }
    int main() { print(is_even(10)); print(is_odd(7)); return 0; }
    """
    assert out(src) == ["1", "1"]


def test_locals_fresh_per_activation():
    src = """
    int probe(int depth) {
        int local;
        if (depth > 0) { int ignored = probe(depth - 1); }
        local = local + depth;
        return local;
    }
    int main() { return probe(3); }
    """
    # local is zero-initialised per frame, so each returns its own depth
    assert run(src).exit_value == 3


def test_heap_allocation_zeroed_and_disjoint():
    src = """
    int main() {
        int *a = alloc(int, 4);
        int *b = alloc(int, 4);
        a[0] = 11;
        b[0] = 22;
        print(a[0]); print(b[0]); print(a[1]);
        return 0;
    }
    """
    assert out(src) == ["11", "22", "0"]


def test_struct_through_heap():
    src = """
    struct pair { int a; float b; };
    int main() {
        struct pair *p = alloc(struct pair, 2);
        p[1].a = 5;
        p[1].b = 0.5;
        print(p[1].a); print(p[1].b); print(p[0].a);
        return 0;
    }
    """
    assert out(src) == ["5", "0.5", "0"]


def test_pointer_chain():
    src = """
    int main() {
        int x = 9;
        int *p = &x;
        int **q = &p;
        **q = **q + 1;
        print(x);
        return 0;
    }
    """
    assert out(src) == ["10"]


def test_null_deref_faults():
    with pytest.raises(InterpError):
        run("int main() { int *p = 0; return *p; }")


def test_short_circuit_prevents_null_deref():
    src = """
    int main() {
        int *p = 0;
        if (p != 0 && *p > 0) { print(1); } else { print(2); }
        return 0;
    }
    """
    assert out(src) == ["2"]


def test_short_circuit_or():
    src = """
    int count;
    int bump() { count = count + 1; return 1; }
    int main() { int r = bump() || bump(); print(count); return r; }
    """
    assert out(src) == ["1"]


def test_int_float_mixing():
    src = """
    int main() {
        float f = 3;
        int i = (int)(f / 2);
        print(f / 2); print(i);
        return 0;
    }
    """
    assert out(src) == ["1.5", "1"]


def test_signed_wraparound_in_program():
    src = """
    int main() {
        int big = 9223372036854775807;
        print(big + 1);
        return 0;
    }
    """
    assert out(src) == [str(-(2**63))]


def test_step_limit():
    src = "int main() { while (1) { } return 0; }"
    with pytest.raises(InterpLimitExceeded):
        run_module(compile_to_ir(src), [], max_steps=1000)


def test_for_break_continue():
    src = """
    int main() {
        int s = 0;
        for (int i = 0; i < 10; i += 1) {
            if (i == 3) { continue; }
            if (i == 7) { break; }
            s += i;
        }
        return s;
    }
    """
    assert run(src).exit_value == 0 + 1 + 2 + 4 + 5 + 6


def test_array_in_struct():
    src = """
    struct row { int cells[3]; int tag; };
    int main() {
        struct row r;
        r.cells[2] = 7;
        r.tag = 1;
        print(r.cells[2] + r.tag);
        return 0;
    }
    """
    assert out(src) == ["8"]


def test_global_array_indexing_wraps_program_logic():
    src = """
    int hist[5];
    int main(int n) {
        for (int i = 0; i < n; i += 1) { hist[i % 5] += 1; }
        print(hist[0]); print(hist[4]);
        return 0;
    }
    """
    assert out(src, [12]) == ["3", "2"]


def test_stats_counting():
    res = run("int g; int main() { g = 1; int x = g + g; print(x); return 0; }")
    assert res.stats.direct_loads >= 2
    assert res.stats.stores == 0  # direct assigns are not indirect stores
