"""Lexer unit tests."""

import pytest

from repro.errors import LexError
from repro.minic.lexer import Token, TokenKind, tokenize


def kinds(source):
    return [(t.kind, t.text) for t in tokenize(source) if t.kind is not TokenKind.EOF]


def test_empty_source():
    toks = tokenize("")
    assert len(toks) == 1
    assert toks[0].kind is TokenKind.EOF


def test_integer_literals():
    assert kinds("0 42 1234567890") == [
        (TokenKind.INT_LIT, "0"),
        (TokenKind.INT_LIT, "42"),
        (TokenKind.INT_LIT, "1234567890"),
    ]


def test_float_literals():
    assert kinds("1.5 0.25 2e3 1.5e-2") == [
        (TokenKind.FLOAT_LIT, "1.5"),
        (TokenKind.FLOAT_LIT, "0.25"),
        (TokenKind.FLOAT_LIT, "2e3"),
        (TokenKind.FLOAT_LIT, "1.5e-2"),
    ]


def test_integer_then_member_access_is_not_float():
    # "a.b" style after a number: 3 . x should not fuse into a float
    toks = kinds("3 .5")
    assert toks[0] == (TokenKind.INT_LIT, "3")


def test_keywords_vs_identifiers():
    assert kinds("int intx if ifx while whilex") == [
        (TokenKind.KEYWORD, "int"),
        (TokenKind.IDENT, "intx"),
        (TokenKind.KEYWORD, "if"),
        (TokenKind.IDENT, "ifx"),
        (TokenKind.KEYWORD, "while"),
        (TokenKind.IDENT, "whilex"),
    ]


def test_all_keywords_recognised():
    for kw in ("int", "float", "void", "struct", "if", "else", "while",
               "for", "return", "break", "continue", "print", "alloc"):
        assert kinds(kw) == [(TokenKind.KEYWORD, kw)]


def test_two_char_punctuation_longest_match():
    assert [t for _, t in kinds("->==!=<=>=&&||+=-=")] == [
        "->", "==", "!=", "<=", ">=", "&&", "||", "+=", "-=",
    ]


def test_arrow_vs_minus():
    assert [t for _, t in kinds("a->b a - b")] == ["a", "->", "b", "a", "-", "b"]


def test_line_comments():
    assert kinds("a // comment with * and /\nb") == [
        (TokenKind.IDENT, "a"),
        (TokenKind.IDENT, "b"),
    ]


def test_block_comments():
    assert kinds("a /* x\ny\nz */ b") == [
        (TokenKind.IDENT, "a"),
        (TokenKind.IDENT, "b"),
    ]


def test_unterminated_block_comment():
    with pytest.raises(LexError):
        tokenize("a /* never closed")


def test_invalid_character():
    with pytest.raises(LexError) as exc:
        tokenize("a @ b")
    assert exc.value.line == 1


def test_positions_track_lines_and_columns():
    toks = tokenize("ab\n  cd")
    assert (toks[0].line, toks[0].column) == (1, 1)
    assert (toks[1].line, toks[1].column) == (2, 3)


def test_underscore_identifiers():
    assert kinds("_x x_y _1") == [
        (TokenKind.IDENT, "_x"),
        (TokenKind.IDENT, "x_y"),
        (TokenKind.IDENT, "_1"),
    ]
