"""Trace-schema drift guard.

Every event name emitted anywhere in ``src/`` must appear in both
documented schema tables — the docstring table in
:mod:`repro.obs.trace` and the markdown table in DESIGN.md §"Trace
schema" — and vice versa: a documented event nobody emits is stale
documentation.  Adding an event without documenting it (or renaming one
side only) fails here, not in production.
"""

from __future__ import annotations

import pathlib
import re

import repro.obs.trace as trace_mod

REPO = pathlib.Path(__file__).parent.parent
SRC = REPO / "src"
DESIGN = REPO / "DESIGN.md"

#: an event emission: ``….event("name", …)`` or ``….observer("name", …)``
#: (possibly with the string literal on the following line).
_EMIT_RE = re.compile(
    r'(?:\.event|\.observer)\(\s*"([a-z_][a-z0-9_.]*)"'
)

#: a schema row in the trace.py docstring table: ``…`` at line start.
_DOCSTRING_ROW_RE = re.compile(r"^``([a-z_][a-z0-9_./]*)``", re.MULTILINE)

#: backticked event names in the first cell of a DESIGN.md table row.
_DESIGN_ROW_RE = re.compile(r"^\| *((?:`[a-z_][a-z0-9_.]*`(?: */ *)?)+) *\|", re.MULTILINE)


def _expand(name: str) -> list[str]:
    """``phase.begin/end`` -> [``phase.begin``, ``phase.end``]."""
    if "/" not in name:
        return [name]
    first, *rest = name.split("/")
    prefix = first.rsplit(".", 1)[0]
    return [first] + [f"{prefix}.{r}" for r in rest]


def emitted_events() -> set[str]:
    names: set[str] = set()
    for path in SRC.rglob("*.py"):
        names.update(_EMIT_RE.findall(path.read_text(encoding="utf-8")))
    # phase.end is emitted via a multi-line call matched above; nothing
    # to special-case — but make sure the scan actually found code.
    assert names, "event scan found nothing — emission pattern drifted?"
    return names


def trace_docstring_events() -> set[str]:
    doc = trace_mod.__doc__ or ""
    names: set[str] = set()
    for m in _DOCSTRING_ROW_RE.findall(doc):
        names.update(_expand(m))
    return names


def design_md_events() -> set[str]:
    text = DESIGN.read_text(encoding="utf-8")
    # Restrict to the trace-schema section so other tables don't leak in.
    section = text.split('## 8. Trace schema', 1)[1]
    section = section.split("\n## ", 1)[0]
    names: set[str] = set()
    for cell in _DESIGN_ROW_RE.findall(section):
        for tick in re.findall(r"`([a-z_][a-z0-9_.]*)`", cell):
            names.add(tick)
    return names


def test_every_emitted_event_is_documented_in_trace_py():
    undocumented = emitted_events() - trace_docstring_events()
    assert not undocumented, (
        f"events emitted in src/ but missing from the repro.obs.trace "
        f"docstring schema table: {sorted(undocumented)}"
    )


def test_every_trace_py_event_is_emitted_somewhere():
    stale = trace_docstring_events() - emitted_events()
    assert not stale, (
        f"events documented in repro.obs.trace but never emitted in "
        f"src/: {sorted(stale)}"
    )


def test_every_emitted_event_is_documented_in_design_md():
    undocumented = emitted_events() - design_md_events()
    assert not undocumented, (
        f"events emitted in src/ but missing from DESIGN.md §'Trace "
        f"schema': {sorted(undocumented)}"
    )


def test_every_design_md_event_is_emitted_somewhere():
    stale = design_md_events() - emitted_events()
    assert not stale, (
        f"events documented in DESIGN.md §'Trace schema' but never "
        f"emitted in src/: {sorted(stale)}"
    )


def test_profile_events_documented():
    """The profile.* additions are in both tables (regression anchor
    for this PR's schema extension)."""
    for name in ("profile.line", "profile.site"):
        assert name in trace_docstring_events()
        assert name in design_md_events()


def test_probalias_events_documented():
    """The alias-probability estimate event is in both tables and
    actually emitted (regression anchor for the probabilistic alias
    analysis PR's schema extension)."""
    name = "probalias.estimate"
    assert name in trace_docstring_events()
    assert name in design_md_events()
    assert name in emitted_events()


def test_span_events_documented():
    """The hierarchical-span events are in both tables (regression
    anchor for the telemetry PR's schema extension)."""
    for name in ("span.begin", "span.end"):
        assert name in trace_docstring_events()
        assert name in design_md_events()
        assert name in emitted_events()


def test_service_events_documented():
    """The job-service events are in both tables and actually emitted
    (regression anchor for the service PR's schema extension)."""
    for name in ("service.job", "service.retry", "service.cache"):
        assert name in trace_docstring_events()
        assert name in design_md_events()
        assert name in emitted_events()
