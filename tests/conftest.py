"""Shared test helpers.

The central facility is :func:`assert_all_modes_agree`: compile one
program under every compilation mode and check that interpreter and
simulator outputs all match the unoptimised reference — the repository's
correctness backbone (DESIGN.md section 5).
"""

from __future__ import annotations

from typing import Optional, Sequence, Union

import pytest

from repro.pipeline import (
    CompilerOptions,
    OptLevel,
    SpecMode,
    compile_source,
    run_program,
)

Value = Union[int, float]

ALL_MODES: list[tuple[OptLevel, SpecMode]] = [
    (OptLevel.O0, SpecMode.NONE),
    (OptLevel.O1, SpecMode.NONE),
    (OptLevel.O2, SpecMode.NONE),
    (OptLevel.O3, SpecMode.NONE),
    (OptLevel.O3, SpecMode.PROFILE),
    (OptLevel.O3, SpecMode.HEURISTIC),
    (OptLevel.O3, SpecMode.SOFTWARE),
]


def assert_all_modes_agree(
    source: str,
    args: Optional[Sequence[Value]] = None,
    train_args: Optional[Sequence[Value]] = None,
    modes: Optional[list[tuple[OptLevel, SpecMode]]] = None,
) -> None:
    """Differential correctness across the whole mode matrix."""
    args = list(args or [])
    train = list(train_args if train_args is not None else args)
    ref = run_program(source, args)
    for lvl, mode in modes or ALL_MODES:
        # fallback=False: a differential check that silently recompiled
        # at -O0 would "pass" without testing the mode it names.
        out = compile_source(
            source,
            CompilerOptions(opt_level=lvl, spec_mode=mode, fallback=False),
            train_args=train,
        )
        ires = out.interpret(args)
        assert ires.output == ref.output, (
            f"interp mismatch at O{int(lvl)}/{mode.value}: "
            f"{ires.output} != {ref.output}"
        )
        assert ires.exit_value == ref.exit_value
        mres = out.run(args)
        assert mres.output == ref.output, (
            f"machine mismatch at O{int(lvl)}/{mode.value}: "
            f"{mres.output} != {ref.output}"
        )
        assert mres.exit_value == ref.exit_value


@pytest.fixture
def pointer_alias_program() -> str:
    """The canonical p-may-point-to-{a,b} example from the paper."""
    return """
    int a;
    int b;
    int *p;

    int main(int n) {
        int s = 0;
        int i = 0;
        if (n > 100) { p = &a; } else { p = &b; }
        a = 7;
        while (i < n) {
            s = s + a;
            *p = s;
            s = s + a;
            i = i + 1;
        }
        print(s);
        print(a);
        print(b);
        return 0;
    }
    """
