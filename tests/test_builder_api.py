"""The hand-construction API (ModuleBuilder/FunctionBuilder): what a
downstream user building IR without the MiniC frontend relies on."""

import pytest

from repro.errors import IRError
from repro.ir import (
    FLOAT,
    INT,
    BinOpKind,
    EvalStmt,
    ModuleBuilder,
    verify_module,
)
from repro.ir.interp import run_module
from repro.pipeline import CompilerOptions, OptLevel
from repro.target.codegen import generate_machine_code
from repro.machine.cpu import Simulator


def test_builder_loop_program():
    """sum 0..n-1 built entirely through the builder API."""
    mb = ModuleBuilder("sum")
    fb = mb.function("main", [("n", INT)], INT)
    n = fb.fn.params[0]
    s = fb.temp(INT, "s")
    i = fb.temp(INT, "i")
    fb.assign(s, 0)
    fb.assign(i, 0)
    head = fb.block("head")
    body = fb.block("body")
    exit_ = fb.block("exit")
    fb.jump(head)
    fb.set_block(head)
    fb.branch(fb.lt(i, n), body, exit_)
    fb.set_block(body)
    fb.assign(s, fb.add(s, i))
    fb.assign(i, fb.add(i, 1))
    fb.jump(head)
    fb.set_block(exit_)
    fb.ret(fb.read(s))
    fb.finish()
    module = mb.finish()
    verify_module(module)
    assert run_module(module, [10]).exit_value == 45
    # and the whole backend accepts it
    program = generate_machine_code(module)
    assert Simulator(program).run([10]).exit_value == 45


def test_builder_struct_and_heap():
    mb = ModuleBuilder("structs")
    node = mb.struct("node", [("value", INT), ("weight", FLOAT)])
    fb = mb.function("main", [], INT)
    from repro.ir.types import PointerType

    ptr = fb.temp(PointerType(node), "nd")
    fb.alloc(ptr, node, 3)
    # nd[1].value = 9
    elem = fb.index_addr(fb.read(ptr), fb.mul(1, node.size_words()))
    elem.type = PointerType(node)
    field = fb.field_addr(elem, node, "value")
    fb.store(field, 9)
    fb.ret(fb.load(field))
    fb.finish()
    module = mb.finish()
    verify_module(module)
    assert run_module(module, []).exit_value == 9


def test_builder_globals_and_addressing():
    mb = ModuleBuilder("globals")
    g = mb.global_var("g", INT, init=5)
    fb = mb.function("main", [], INT)
    p = fb.temp(__import__("repro.ir.types", fromlist=["PointerType"]).PointerType(INT), "p")
    fb.assign(p, fb.addr(g))
    fb.store(fb.read(p), fb.add(fb.load(fb.read(p)), 2))
    fb.ret(fb.read(g))
    fb.finish()
    module = mb.finish()
    assert g.is_address_taken
    assert run_module(module, []).exit_value == 7


def test_builder_eval_stmt_and_eq():
    mb = ModuleBuilder("m")
    fb = mb.function("main", [], INT)
    fb.eval(fb.eq(1, 1))  # evaluated, discarded
    fb.ret(1)
    fb.finish()
    module = mb.finish()
    verify_module(module)
    assert any(isinstance(s, EvalStmt) for s in module.main.iter_stmts())
    assert run_module(module, []).exit_value == 1


def test_builder_calls_between_functions():
    mb = ModuleBuilder("calls")
    fb2 = mb.function("square", [("x", INT)], INT)
    x = fb2.fn.params[0]
    fb2.ret(fb2.mul(x, x))
    fb2.finish()
    fb = mb.function("main", [], INT)
    result = fb.temp(INT, "r")
    fb.call("square", [6], result=result)
    fb.ret(fb.read(result))
    fb.finish()
    module = mb.finish()
    assert run_module(module, []).exit_value == 36


def test_builder_rejects_unterminated():
    mb = ModuleBuilder("m")
    fb = mb.function("main", [], INT)
    fb.assign(fb.temp(INT), 1)
    with pytest.raises(IRError):
        fb.finish()


def test_builder_branch_same_target_collapses():
    mb = ModuleBuilder("m")
    fb = mb.function("main", [], INT)
    target = fb.block("only")
    fb.branch(fb.lt(1, 2), target, target)  # degenerate: becomes a jump
    fb.set_block(target)
    fb.ret(0)
    fb.finish()
    module = mb.finish()
    verify_module(module)  # would fail on a two-target self branch


def test_builder_sub_and_binop_helpers():
    mb = ModuleBuilder("m")
    fb = mb.function("main", [], INT)
    t = fb.assign_new_temp(fb.sub(10, fb.binop(BinOpKind.DIV, 9, 3)))
    fb.ret(fb.read(t))
    fb.finish()
    assert run_module(mb.finish(), []).exit_value == 7


def test_builder_module_program_runs_through_pipeline_codegen():
    """Builder-made modules pass through codegen identically to
    frontend-made ones."""
    mb = ModuleBuilder("full")
    g = mb.global_var("acc", INT)
    fb = mb.function("main", [("n", INT)], INT)
    n = fb.fn.params[0]
    fb.assign(g, fb.mul(n, 3))
    fb.print_(fb.read(g))
    fb.ret(fb.read(g))
    fb.finish()
    module = mb.finish()
    program = generate_machine_code(module)
    res = Simulator(program).run([4])
    assert res.output == ["12"]
    assert res.exit_value == 12
