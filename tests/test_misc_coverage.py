"""Coverage for smaller public surfaces: short-circuit value context,
alias query helpers, counter properties, report export."""

import json

import pytest

from repro.alias import AliasManager
from repro.ir.expr import Load
from repro.ir.stmt import Store
from repro.machine.counters import Counters
from repro.minic import compile_to_ir
from repro.pipeline import run_program

from tests.conftest import assert_all_modes_agree


# -- short-circuit operators in value context ---------------------------------


def test_logical_and_as_value():
    src = """
    int count;
    int bump() { count = count + 1; return 0; }
    int main() {
        int r = bump() && bump();   // second bump must not run
        print(r); print(count);
        return 0;
    }
    """
    assert run_program(src, []).output == ["0", "1"]


def test_logical_or_as_value():
    src = """
    int main(int n) {
        int r = (n > 3) || (n < 0);
        return r;
    }
    """
    assert run_program(src, [5]).exit_value == 1
    assert run_program(src, [2]).exit_value == 0


def test_short_circuit_value_all_modes():
    src = """
    int g;
    int touch(int v) { g = g + v; return v; }
    int main(int n) {
        int r = (n > 2) && touch(n);
        print(r); print(g);
        return 0;
    }
    """
    assert_all_modes_agree(src, [5])
    assert_all_modes_agree(src, [1])


# -- alias manager helpers --------------------------------------------------------


def test_may_alias_accesses_api():
    src = """
    int a; int b;
    int *p; int *r;
    int main(int n) {
        if (n) { p = &a; } else { p = &b; }
        r = &a;
        *p = 1;
        print(*r);
        return 0;
    }
    """
    module = compile_to_ir(src)
    am = AliasManager(module)
    store = next(s for s in module.main.iter_stmts() if isinstance(s, Store))
    load = next(
        e
        for s in module.main.iter_stmts()
        for e in s.walk_exprs()
        if isinstance(e, Load)
    )
    assert am.may_alias_accesses(store.addr, store.value.type, load.addr, load.type)


def test_disjoint_accesses_do_not_alias():
    src = """
    int a;
    float f;
    int main() {
        int *p = &a;
        float *q = &f;
        *p = 1;
        *q = 1.5;
        print(*p); print(*q);
        return 0;
    }
    """
    module = compile_to_ir(src)
    am = AliasManager(module)
    stores = [s for s in module.main.iter_stmts() if isinstance(s, Store)]
    assert len(stores) == 2
    assert not am.may_alias_accesses(
        stores[0].addr, stores[0].value.type, stores[1].addr, stores[1].value.type
    )


# -- counters ----------------------------------------------------------------------


def test_counters_ratios_and_dict():
    c = Counters(check_instructions=10, check_failures=3, retired_loads=90)
    assert c.misspeculation_ratio == pytest.approx(0.3)
    assert c.checks_per_load == pytest.approx(10 / 100)
    d = c.as_dict()
    assert d["check_failures"] == 3 and "cpu_cycles" in d


def test_counters_zero_division_guards():
    c = Counters()
    assert c.misspeculation_ratio == 0.0
    assert c.checks_per_load == 0.0


# -- report export -------------------------------------------------------------------


def test_figures_as_dict_is_json_serialisable():
    from repro.workloads import figures_as_dict, run_benchmark

    results = {"vpr": run_benchmark("vpr")}
    data = figures_as_dict(results)
    text = json.dumps(data)
    parsed = json.loads(text)
    assert parsed["figure8"]["vpr"]["cpu_cycles_reduction_pct"] == pytest.approx(
        results["vpr"].cycle_reduction_pct
    )
    assert set(parsed) == {"figure8", "figure9", "figure10", "figure11"}
