"""HSSA construction: μ/χ placement, SSA invariants, speculative base
versions (paper sections 3.1/3.3)."""

import pytest

from repro.alias import AliasManager
from repro.ir.expr import VarRead
from repro.ir.stmt import Assign, Call, Store, stmt_defines
from repro.minic import compile_to_ir
from repro.ssa import build_hssa, var_key
from repro.ssa.hssa import ChiOperand, MuOperand


def build(src, decider=None, fn_name="main"):
    module = compile_to_ir(src)
    am = AliasManager(module)
    fn = module.function(fn_name)
    info = build_hssa(fn, module, am, spec_decider=decider)
    return module, fn, info


ALIAS_SRC = """
int a; int b;
int main(int n) {
    int *p;
    if (n > 0) { p = &a; } else { p = &b; }
    *p = 5;
    print(a);
    print(b);
    return 0;
}
"""


def test_store_gets_chi_on_named_targets_and_vvar():
    module, fn, info = build(ALIAS_SRC)
    store = next(s for s in fn.iter_stmts() if isinstance(s, Store))
    chi_names = [str(c.var) for c in store.chi_list]
    assert "a" in chi_names and "b" in chi_names
    assert info.store_chi[store.sid] in store.chi_list
    # the virtual variable chi is present too
    assert any(c is info.store_chi[store.sid] for c in store.chi_list)


def test_load_gets_mu():
    src = """
    int a; int b;
    int main(int n) {
        int *p;
        if (n) { p = &a; } else { p = &b; }
        print(*p);
        return 0;
    }
    """
    module, fn, info = build(src)
    from repro.ir.expr import Load

    load = next(
        e for s in fn.iter_stmts() for e in s.walk_exprs() if isinstance(e, Load)
    )
    assert load.eid in info.load_mu
    mu = info.load_mu[load.eid]
    assert mu.version >= 0


def test_versions_change_across_chi():
    module, fn, info = build(ALIAS_SRC)
    a = module.find_global("a")
    reads = [
        e
        for s in fn.iter_stmts()
        for e in s.walk_exprs()
        if isinstance(e, VarRead) and e.var is a
    ]
    (read,) = reads
    store = next(s for s in fn.iter_stmts() if isinstance(s, Store))
    chi_a = next(c for c in store.chi_list if c.var is a)
    # the read after the store sees the chi's new version
    assert info.use_version[read.eid] == chi_a.new_version


def test_call_chi_from_gmod():
    src = """
    int g;
    void writer() { g = 42; }
    int main() { writer(); print(g); return 0; }
    """
    module, fn, info = build(src)
    call = next(s for s in fn.iter_stmts() if isinstance(s, Call))
    assert any(str(c.var) == "g" for c in call.chi_list)


def test_pure_call_has_no_chi_on_globals():
    src = """
    int g;
    int pure(int x) { return x * 2; }
    int main() { print(pure(3)); return g; }
    """
    module, fn, info = build(src)
    call = next(s for s in fn.iter_stmts() if isinstance(s, Call))
    assert not any(str(c.var) == "g" for c in call.chi_list)


def test_ssa_single_assignment_invariant():
    """Each (key, version) pair must have exactly one def site."""
    module, fn, info = build(ALIAS_SRC)
    # def_site maps are keyed by (key, version): construction guarantees
    # uniqueness; verify versions are unique per key across phis/defs/chis
    seen = set()
    for block in fn.blocks:
        for key, phi in info.block_phis(block).items():
            assert (key, phi.result_version) not in seen
            seen.add((key, phi.result_version))
        for stmt in block.stmts:
            target = stmt_defines(stmt)
            if target is not None and stmt.sid in info.def_version:
                k = (var_key(target), info.def_version[stmt.sid])
                assert k not in seen
                seen.add(k)
            for chi in stmt.chi_list:
                k = (chi.key, chi.new_version)
                assert k not in seen
                seen.add(k)


def test_phi_operand_count_matches_preds():
    module, fn, info = build(ALIAS_SRC)
    for block in fn.blocks:
        for key, phi in info.block_phis(block).items():
            assert len(phi.operands) == len(block.preds)
            assert all(op >= 0 for op in phi.operands)


def test_phi_placed_at_join_for_conditional_def():
    module, fn, info = build(ALIAS_SRC)
    p = next(v for v in fn.all_variables() if v.name == "p")
    join_blocks = [b for b in fn.blocks if len(b.preds) >= 2]
    has_p_phi = any(
        var_key(p) in info.block_phis(b) for b in join_blocks
    )
    assert has_p_phi


# -- speculative flags ------------------------------------------------------


def spec_decider_for(name):
    from repro.ir.stmt import Store as _Store

    def decider(stmt, obj):
        return isinstance(stmt, _Store) and obj.name == name

    return decider


def test_chi_s_marking_matches_decider():
    module, fn, info = build(ALIAS_SRC, decider=spec_decider_for("a"))
    store = next(s for s in fn.iter_stmts() if isinstance(s, Store))
    by_name = {str(c.var): c.speculative for c in store.chi_list if not str(c.var).startswith("v")}
    assert by_name["a"] is True
    assert by_name["b"] is False


def test_base_version_skips_speculative_chi():
    module, fn, info = build(ALIAS_SRC, decider=spec_decider_for("a"))
    a = module.find_global("a")
    key = var_key(a)
    store = next(s for s in fn.iter_stmts() if isinstance(s, Store))
    chi_a = next(c for c in store.chi_list if c.var is a)
    assert info.base_version(key, chi_a.new_version) == info.base_version(
        key, chi_a.old_version
    )


def test_base_version_respects_real_chi():
    module, fn, info = build(ALIAS_SRC)  # no decider: all chis real
    a = module.find_global("a")
    key = var_key(a)
    store = next(s for s in fn.iter_stmts() if isinstance(s, Store))
    chi_a = next(c for c in store.chi_list if c.var is a)
    assert info.base_version(key, chi_a.new_version) == chi_a.new_version


def test_loop_phi_transparent_under_speculation():
    """Figure 3: the loop-carried phi collapses to the pre-loop version
    when the only in-loop update is speculative."""
    src = """
    int a; int b;
    int main(int n) {
        int *p;
        if (n > 100) { p = &a; } else { p = &b; }
        int s = 0;
        int i = 0;
        while (i < n) {
            *p = i;
            s = s + a;
            i = i + 1;
        }
        print(s);
        return 0;
    }
    """
    module, fn, info = build(src, decider=spec_decider_for("a"))
    a = module.find_global("a")
    key = var_key(a)
    reads = [
        e
        for s in fn.iter_stmts()
        for e in s.walk_exprs()
        if isinstance(e, VarRead) and e.var is a
    ]
    (read,) = reads
    v = info.use_version[read.eid]
    # base collapses through the loop phi and chi_s to the entry version
    assert info.base_version(key, v) == 0


def test_loop_phi_not_transparent_without_speculation():
    src = """
    int a; int b;
    int main(int n) {
        int *p;
        if (n > 100) { p = &a; } else { p = &b; }
        int s = 0;
        int i = 0;
        while (i < n) {
            *p = i;
            s = s + a;
            i = i + 1;
        }
        print(s);
        return 0;
    }
    """
    module, fn, info = build(src)
    a = module.find_global("a")
    key = var_key(a)
    reads = [
        e
        for s in fn.iter_stmts()
        for e in s.walk_exprs()
        if isinstance(e, VarRead) and e.var is a
    ]
    (read,) = reads
    v = info.use_version[read.eid]
    assert info.base_version(key, v) == v


def test_block_version_snapshots():
    module, fn, info = build(ALIAS_SRC)
    a = module.find_global("a")
    key = var_key(a)
    store = next(s for s in fn.iter_stmts() if isinstance(s, Store))
    block = store.block
    chi_a = next(c for c in store.chi_list if c.var is a)
    assert info.version_at_exit(block.bid, key) == chi_a.new_version
