"""The chaos harness: fault injection, differential campaign, reduction,
graceful pipeline degradation, and the tolerant workload matrix."""

from __future__ import annotations

import json

import pytest

from repro.chaos import (
    ChaosSelfTestError,
    FaultInjector,
    FaultPlan,
    GeneratedProgram,
    ReductionError,
    default_fault_plans,
    generate_program,
    reduce_lines,
    reduce_source,
    run_campaign,
    run_self_test,
)
from repro.chaos.campaign import SELF_TEST_PROGRAM, default_modes
from repro.errors import (
    ConfigError,
    InterpLimitExceeded,
    InterpTimeout,
    ParseError,
    ReproError,
)
from repro.machine.alat import ALATConfig
from repro.machine.cpu import Simulator
from repro.obs.sinks import MemorySink
from repro.obs.trace import TraceContext
from repro.pipeline import (
    CompilerOptions,
    OptLevel,
    SpecMode,
    compile_source,
    run_program,
)

AGGRESSIVE = FaultPlan(
    name="aggressive",
    seed=7,
    alat_entries=2,
    alat_associativity=2,
    partial_bits=4,
    drop_alloc_rate=0.3,
    spurious_invalidate_rate=0.5,
    flush_rate=0.05,
)


def _compile_canonical():
    return compile_source(
        SELF_TEST_PROGRAM.source,
        CompilerOptions(
            opt_level=OptLevel.O3, spec_mode=SpecMode.PROFILE, fallback=False
        ),
        train_args=list(SELF_TEST_PROGRAM.train_args),
    )


def _simulate(output, args, plan):
    sink = MemorySink()
    injector = FaultInjector(plan) if plan is not None else None
    sim = Simulator(
        output.program, output.options.machine,
        obs=TraceContext(sink), injector=injector,
    )
    return sim.run(list(args)), injector, sink


# ---------------------------------------------------------------------------
# ALATConfig validation
# ---------------------------------------------------------------------------


def test_alat_config_rejects_non_multiple_geometry():
    with pytest.raises(ConfigError, match="multiple"):
        ALATConfig(entries=6, associativity=4)


@pytest.mark.parametrize("entries,assoc", [(0, 2), (-4, 2), (4, 0), (4, -1)])
def test_alat_config_rejects_non_positive_geometry(entries, assoc):
    with pytest.raises(ConfigError, match="positive"):
        ALATConfig(entries=entries, associativity=assoc)


@pytest.mark.parametrize("bits", [0, -3, 65, 100])
def test_alat_config_rejects_bad_partial_bits(bits):
    with pytest.raises(ConfigError, match="partial_bits"):
        ALATConfig(partial_bits=bits)


def test_alat_config_error_is_repro_error():
    with pytest.raises(ReproError):
        ALATConfig(entries=3, associativity=2)


def test_alat_config_accepts_valid_geometry():
    cfg = ALATConfig(entries=64, associativity=4, partial_bits=64)
    assert cfg.sets == 16


# ---------------------------------------------------------------------------
# fault injector: determinism + safety + accounting
# ---------------------------------------------------------------------------


def test_injector_is_deterministic_per_seed():
    out = _compile_canonical()
    runs = [_simulate(out, SELF_TEST_PROGRAM.ref_args, AGGRESSIVE)
            for _ in range(2)]
    (r1, i1, _), (r2, i2, _) = runs
    assert i1.stats.counts == i2.stats.counts
    assert i1.stats.total > 0
    assert r1.output == r2.output
    assert r1.counters.check_failures == r2.counters.check_failures


def test_faults_never_change_output():
    out = _compile_canonical()
    reference = run_program(
        SELF_TEST_PROGRAM.source, list(SELF_TEST_PROGRAM.ref_args)
    )
    for plan in [AGGRESSIVE] + default_fault_plans(seed=3):
        result, injector, _ = _simulate(
            out, SELF_TEST_PROGRAM.ref_args, plan
        )
        assert result.output == reference.output, plan.describe()
        assert result.exit_value == reference.exit_value


@pytest.mark.parametrize(
    "plan,args,expect_kinds",
    [
        # n=80 keeps p = &b, so ALAT entries survive to be victims
        (
            FaultPlan(name="inval-only", seed=5,
                      spurious_invalidate_rate=0.5),
            (80,),
            {"spurious_invalidate"},
        ),
        (
            FaultPlan(name="flush-only", seed=5, flush_rate=0.02),
            (80,),
            {"flush"},
        ),
        (
            AGGRESSIVE,
            SELF_TEST_PROGRAM.ref_args,
            {"drop_alloc", "clamp_entries", "narrow_partial_bits"},
        ),
    ],
)
def test_every_injected_fault_is_visible_in_stats_and_trace(
    plan, args, expect_kinds
):
    out = _compile_canonical()
    result, injector, sink = _simulate(out, args, plan)
    counts = injector.stats.counts
    for kind in expect_kinds:
        assert counts.get(kind, 0) > 0, (kind, counts)
    alat = result.alat_stats
    assert alat.chaos_dropped_allocations == counts.get("drop_alloc", 0)
    assert alat.chaos_spurious_invalidations == counts.get(
        "spurious_invalidate", 0
    )
    assert alat.chaos_flushes == counts.get("flush", 0)
    traced = sink.of_type("chaos.fault")
    assert len(traced) == injector.stats.total
    assert {e["kind"] for e in traced} == {k for k in counts}


def test_injector_clamps_geometry():
    out = _compile_canonical()
    sim = Simulator(
        out.program, out.options.machine, injector=FaultInjector(AGGRESSIVE)
    )
    assert sim.alat.config.entries == 2
    assert sim.alat.config.partial_bits == 4
    # the machine config object itself must not be mutated
    assert out.options.machine.alat.entries != 2 or \
        out.options.machine.alat is not sim.alat.config


def test_chaos_stats_zero_without_injector():
    out = _compile_canonical()
    result = out.run(list(SELF_TEST_PROGRAM.ref_args))
    alat = result.alat_stats
    assert alat.chaos_dropped_allocations == 0
    assert alat.chaos_spurious_invalidations == 0
    assert alat.chaos_flushes == 0


# ---------------------------------------------------------------------------
# generator
# ---------------------------------------------------------------------------


def test_generator_is_deterministic():
    a = generate_program(1234, index=5)
    b = generate_program(1234, index=5)
    assert a == b
    c = generate_program(1235, index=5)
    assert c.source != a.source or c.ref_args != a.ref_args


def test_generated_programs_parse_and_run():
    for seed in range(30):
        program = generate_program(seed)
        result = run_program(
            program.source, list(program.ref_args), max_steps=2_000_000
        )
        assert isinstance(result.exit_value, int)


# ---------------------------------------------------------------------------
# reducer
# ---------------------------------------------------------------------------


def test_reduce_lines_is_minimal():
    lines = [f"line{i}" for i in range(30)]

    def interesting(cand):
        return "line7" in cand and "line23" in cand

    result = reduce_lines(lines, interesting)
    assert sorted(result) == ["line23", "line7"]


def test_reduce_lines_rejects_uninteresting_input():
    with pytest.raises(ReductionError):
        reduce_lines(["a", "b"], lambda cand: False)


def test_reduce_source_drops_blank_lines_and_predicate_exceptions():
    source = "a\n\nb\n\nneedle\n"

    def interesting(src):
        if "b" in src and "needle" not in src:
            raise ValueError("predicate crash counts as uninteresting")
        return "needle" in src

    assert reduce_source(source, interesting) == "needle\n"


# ---------------------------------------------------------------------------
# campaign
# ---------------------------------------------------------------------------


def test_campaign_smoke_no_divergences(tmp_path):
    report = run_campaign(
        seed=11, runs=4, failures_dir=str(tmp_path / "failures")
    )
    assert report.ok, report.summary()
    assert report.programs == 4
    # 3 modes x (1 no-fault + 3 plans) per program, minus skips
    assert report.runs + report.skipped * 12 == 4 * 12
    assert sum(report.faults_injected.values()) > 0
    assert "no divergences" in report.summary()


def test_campaign_report_round_trips_as_json():
    report = run_campaign(seed=2, runs=2, failures_dir=None)
    payload = json.loads(json.dumps(report.as_dict()))
    assert payload["ok"] is True
    assert payload["programs"] == 2


def test_self_test_catches_and_minimises_planted_bug(tmp_path):
    report = run_self_test(
        seed=0, runs=1, failures_dir=str(tmp_path / "failures")
    )
    assert not report.ok
    divergences = [f for f in report.failures if f.kind == "divergence"]
    assert divergences
    reduced = [f for f in divergences if f.reduced_source]
    assert reduced
    smallest = min(len(f.reduced_source.splitlines()) for f in reduced)
    assert smallest <= 15
    # reduced reproducer is itself a valid, divergent program: it still
    # parses and the artifacts landed on disk
    artifacts = [p for f in report.failures for p in f.artifacts]
    assert any(p.endswith(".min.minic") for p in artifacts)


def test_self_test_restores_the_rewrite_flag():
    from repro.pre import ssapre

    run_self_test(seed=0, runs=1, failures_dir=None)
    assert ssapre.CHAOS_DISABLE_CHECK_REWRITE is False


# ---------------------------------------------------------------------------
# graceful pipeline degradation
# ---------------------------------------------------------------------------

CANONICAL = SELF_TEST_PROGRAM.source


def _boom(*args, **kwargs):
    raise RuntimeError("synthetic internal compiler error")


def test_fallback_recovers_and_reports(monkeypatch):
    import repro.pipeline.driver as driver

    monkeypatch.setattr(driver, "run_load_pre", _boom)
    sink = MemorySink()
    out = compile_source(
        CANONICAL,
        CompilerOptions(opt_level=OptLevel.O3, spec_mode=SpecMode.PROFILE),
        train_args=[10],
        obs=TraceContext(sink),
    )
    assert out.fallback
    assert out.options.opt_level == OptLevel.O1
    events = sink.of_type("pipeline.fallback")
    assert len(events) == 2  # -O3/profile failed, then -O3/none failed
    assert "RuntimeError" in events[0]["error"]
    assert [d for d in out.diagnostics if d.rule == "FALLBACK"]
    # and the degraded program is still correct
    reference = run_program(CANONICAL, [150])
    result = out.run([150])
    assert result.output == reference.output
    assert result.exit_value == reference.exit_value


def test_fallback_disabled_propagates_internal_error(monkeypatch):
    import repro.pipeline.driver as driver

    monkeypatch.setattr(driver, "run_load_pre", _boom)
    with pytest.raises(RuntimeError, match="synthetic"):
        compile_source(
            CANONICAL,
            CompilerOptions(
                opt_level=OptLevel.O3,
                spec_mode=SpecMode.PROFILE,
                fallback=False,
            ),
            train_args=[10],
        )


def test_fallback_never_masks_source_errors():
    with pytest.raises(ParseError):
        compile_source("int main( {", CompilerOptions(fallback=True))


def test_no_fallback_on_clean_compilations():
    out = compile_source(
        CANONICAL,
        CompilerOptions(opt_level=OptLevel.O3, spec_mode=SpecMode.PROFILE),
        train_args=[10],
    )
    assert not out.fallback
    assert not [d for d in out.diagnostics if d.rule == "FALLBACK"]


# ---------------------------------------------------------------------------
# interpreter fuel
# ---------------------------------------------------------------------------

SPIN = """
int main(int n) {
    int i = 0;
    while (i < 10000000) { i = i + 1; }
    return i;
}
"""


def test_interp_fuel_budget_raises_timeout():
    with pytest.raises(InterpTimeout):
        run_program(SPIN, [0], max_steps=5_000)


def test_interp_timeout_is_backwards_compatible():
    assert issubclass(InterpLimitExceeded, InterpTimeout)
    with pytest.raises(InterpLimitExceeded):
        run_program(SPIN, [0], max_steps=5_000)


# ---------------------------------------------------------------------------
# tolerant workload matrix
# ---------------------------------------------------------------------------


def test_workload_matrix_survives_one_failure(monkeypatch):
    import repro.workloads.runner as runner
    from repro.workloads import (
        BENCHMARKS,
        WorkloadFailure,
        WorkloadMatrixError,
        run_all_benchmarks,
    )

    real = runner.run_benchmark
    victim = list(BENCHMARKS)[1]

    def flaky(name, *args, **kwargs):
        if name == victim:
            raise RuntimeError("synthetic workload failure")
        return real(name, *args, **kwargs)

    monkeypatch.setattr(runner, "run_benchmark", flaky)

    failures: list[WorkloadFailure] = []
    results = run_all_benchmarks(failures=failures)
    assert victim not in results
    assert len(results) == len(BENCHMARKS) - 1
    assert [f.name for f in failures] == [victim]
    assert failures[0].exc_type == "RuntimeError"

    # without a collector the sweep still finishes, then raises
    with pytest.raises(WorkloadMatrixError) as exc_info:
        run_all_benchmarks()
    assert len(exc_info.value.results) == len(BENCHMARKS) - 1
    assert victim in str(exc_info.value)


# ---------------------------------------------------------------------------
# chaos CLI
# ---------------------------------------------------------------------------


def test_chaos_cli_clean_run(tmp_path, capsys):
    from repro.chaos.__main__ import main

    code = main([
        "--seed", "5", "--runs", "3", "--quiet",
        "--failures-dir", str(tmp_path / "failures"), "--json",
    ])
    out = capsys.readouterr().out
    payload = json.loads(out)
    assert code == 0
    assert payload["ok"] is True
    assert payload["programs"] == 3


def test_chaos_cli_rejects_bad_runs(tmp_path):
    from repro.chaos.__main__ import main

    with pytest.raises(SystemExit):
        main(["--runs", "0"])
