"""Benchmark workloads: differential correctness across the full mode
matrix (scaled-down inputs) and experiment-harness sanity."""

import pytest

from repro.workloads.programs import BENCHMARKS, FP_BENCHMARKS, get_workload
from repro.workloads.runner import BASELINE, SPECULATIVE, run_benchmark

from tests.conftest import assert_all_modes_agree


@pytest.mark.parametrize("name", list(BENCHMARKS))
def test_workload_all_modes_agree_small(name):
    """Every kernel, every compilation mode, interpreter + simulator —
    on a scaled-down input with the real train input as profile."""
    w = get_workload(name)
    small_args = [max(3, w.ref_args[0] // 20)]
    assert_all_modes_agree(w.source, small_args, train_args=list(w.train_args))


@pytest.mark.parametrize("name", list(BENCHMARKS))
def test_workload_misspeculation_safe(name):
    """Train on a tiny input so the profile is maximally wrong, then run
    a larger one: outputs must still match the oracle."""
    w = get_workload(name)
    args = [max(5, w.ref_args[0] // 10)]
    assert_all_modes_agree(w.source, args, train_args=[3])


def test_registry_complete():
    assert len(BENCHMARKS) == 10
    assert set(FP_BENCHMARKS) <= set(BENCHMARKS)
    assert list(BENCHMARKS)[:3] == ["gzip", "vpr", "mcf"]


def test_get_workload_unknown():
    with pytest.raises(KeyError):
        get_workload("specfp-psi")


def test_runner_validates_output():
    """The harness itself must differentially validate every run."""
    result = run_benchmark("vpr")
    assert result.baseline.machine.output == result.speculative.machine.output
    assert result.workload.name == "vpr"


def test_runner_cache():
    from repro.workloads.runner import _cache

    a = run_benchmark("vpr")
    b = run_benchmark("vpr")
    assert a is b  # memoized


def test_baseline_and_speculative_options_differ():
    base, spec = BASELINE(), SPECULATIVE()
    assert base.spec_mode != spec.spec_mode
    assert base.opt_level == spec.opt_level


def test_reduction_properties():
    r = run_benchmark("vortex")
    assert r.cycle_reduction_pct == pytest.approx(
        100.0
        * (r.baseline.counters.cpu_cycles - r.speculative.counters.cpu_cycles)
        / r.baseline.counters.cpu_cycles
    )
    kinds = r.reduced_loads_by_kind
    assert kinds["direct"] + kinds["indirect"] == (
        r.baseline.counters.retired_loads
        - r.speculative.counters.retired_loads
    )


def test_report_tables_render():
    from repro.workloads.report import (
        figure8_table,
        figure9_table,
        figure10_table,
        figure11_table,
        summary_table,
    )

    results = {"vpr": run_benchmark("vpr"), "vortex": run_benchmark("vortex")}
    for renderer in (figure8_table, figure9_table, figure10_table, figure11_table):
        table = renderer(results)
        assert "vpr" in table and "vortex" in table
    assert "Figure 8" in summary_table(results)


# -- CLI exit-code contract ---------------------------------------------


def test_cli_exits_nonzero_on_any_workload_failure(monkeypatch, capsys):
    import repro.workloads.__main__ as cli
    from repro.workloads.runner import WorkloadFailure

    def failing_sweep(failures=None, **kwargs):
        failures.append(
            WorkloadFailure("gzip", "RuntimeError", "boom", kind="error")
        )
        return {}

    monkeypatch.setattr(cli, "run_all_benchmarks", failing_sweep)
    assert cli.main([]) == 1
    err = capsys.readouterr().err
    assert "FAILED gzip" in err
    assert "1 benchmark(s) failed" in err


def test_cli_exits_zero_on_clean_sweep(monkeypatch):
    import repro.workloads.__main__ as cli

    monkeypatch.setattr(
        cli, "run_all_benchmarks", lambda failures=None, **kwargs: {}
    )
    assert cli.main([]) == 0


def test_cli_fuel_exhaustion_surfaces_as_timeout_failure(capsys):
    import repro.workloads.__main__ as cli

    # A 200-step budget kills every benchmark almost immediately, so
    # the sweep stays fast while exercising the real fuel plumbing.
    assert cli.main(["--fuel", "200"]) == 1
    err = capsys.readouterr().err
    assert "[timeout]" in err
