"""ALAT model unit tests (paper section 2.1 semantics)."""

from repro.machine.alat import ALAT, ALATConfig


def test_allocate_then_check_hits():
    alat = ALAT()
    alat.allocate((1, 5), 0x2000)
    assert alat.check((1, 5), clear=False)
    assert alat.stats.check_hits == 1


def test_check_unknown_tag_misses():
    alat = ALAT()
    assert not alat.check((1, 7), clear=False)
    assert alat.stats.check_misses == 1


def test_store_collision_invalidates():
    alat = ALAT()
    alat.allocate((1, 5), 0x2000)
    assert alat.snoop_store(0x2000) == 1
    assert not alat.check((1, 5), clear=False)
    assert alat.stats.store_collisions == 1


def test_store_to_other_address_keeps_entry():
    alat = ALAT()
    alat.allocate((1, 5), 0x2000)
    assert alat.snoop_store(0x2001) == 0
    assert alat.check((1, 5), clear=False)


def test_clear_completer_removes_entry():
    alat = ALAT()
    alat.allocate((1, 5), 0x2000)
    assert alat.check((1, 5), clear=True)
    assert not alat.check((1, 5), clear=False)


def test_nc_completer_keeps_entry():
    alat = ALAT()
    alat.allocate((1, 5), 0x2000)
    for _ in range(3):
        assert alat.check((1, 5), clear=False)


def test_explicit_invalidation():
    alat = ALAT()
    alat.allocate((1, 5), 0x2000)
    alat.invalidate_entry((1, 5))
    assert not alat.check((1, 5), clear=False)
    # invalidating a missing entry is a no-op
    alat.invalidate_entry((1, 99))


def test_invalidate_all():
    alat = ALAT()
    for r in range(8):
        alat.allocate((1, r), 0x2000 + r)
    alat.invalidate_all()
    assert alat.occupancy == 0


def test_reallocation_updates_address():
    alat = ALAT()
    alat.allocate((1, 5), 0x2000)
    alat.allocate((1, 5), 0x3000)
    assert alat.occupancy == 1
    assert alat.snoop_store(0x2000) == 0  # old address forgotten
    assert alat.snoop_store(0x3000) == 1


def test_capacity_eviction_in_set():
    """Entries whose registers map to one set evict LRU beyond assoc."""
    config = ALATConfig(entries=4, associativity=2)  # 2 sets
    alat = ALAT(config)
    sets = config.sets
    # three tags in the same set (reg % sets equal)
    alat.allocate((1, 0), 0x1000)
    alat.allocate((1, 0 + sets), 0x1001)
    alat.allocate((1, 0 + 2 * sets), 0x1002)
    assert alat.stats.capacity_evictions == 1
    assert not alat.check((1, 0), clear=False)  # LRU victim
    assert alat.check((1, sets), clear=False)
    assert alat.check((1, 2 * sets), clear=False)


def test_partial_address_false_collision():
    """Two addresses sharing low bits collide — the partial-address
    cost the paper mentions in section 5."""
    alat = ALAT(ALATConfig(partial_bits=8))
    alat.allocate((1, 5), 0x100)
    assert alat.snoop_store(0x200 + 0x100 - 0x100) == 0 or True
    # 0x100 and 0x300 share the low 8 bits (0x00)
    alat2 = ALAT(ALATConfig(partial_bits=8))
    alat2.allocate((1, 5), 0x100)
    assert alat2.snoop_store(0x300) == 1  # false collision
    assert not alat2.check((1, 5), clear=False)


def test_distinct_activations_do_not_collide_on_tags():
    alat = ALAT()
    alat.allocate((1, 5), 0x2000)
    assert not alat.check((2, 5), clear=False)  # other activation's r5
    assert alat.check((1, 5), clear=False)


def test_occupancy_bounded_by_capacity():
    config = ALATConfig(entries=8, associativity=2)
    alat = ALAT(config)
    for r in range(100):
        alat.allocate((1, r), 0x1000 + r)
    assert alat.occupancy <= config.entries
