"""Speculation-safety analyzer (`repro.speclint`).

The load-bearing property: seeded miscompiles — reverting the cascade
chk.a upgrade, truncating recovery, deleting an emitted check — are
caught as SPEC### errors at the correct source location, while every
legal compilation (all workloads, all modes) passes strict mode clean.
"""

import json

import pytest

from repro.errors import SpecLintError, VerificationError
from repro.ir.stmt import Assign, Call, SpecFlag
from repro.ir.verify import verify_module
from repro.machine.alat import ALATConfig
from repro.machine.cpu import MachineConfig
from repro.minic.lower import compile_to_ir
from repro.obs.sinks import MemorySink
from repro.obs.trace import TraceContext
from repro.pipeline import (
    CompilerOptions,
    OptLevel,
    SpecLintMode,
    SpecMode,
    compile_source,
)
from repro.speclint import (
    RULE_TABLE,
    Severity,
    diff_executions,
    lint_output,
    run_speclint,
    validate_translation,
)
from repro.speclint.mir import lint_program
#: **q chain (shared shape with test_cascade.py): statically the *w
#: store may modify the pointer p itself; dynamically it (almost)
#: never does.
CHAIN_SRC = """
int a; int b; int c;
int *p;
int *other;
int **q;
int **w;

int main(int n) {
    q = &p;
    p = &a;
    other = &c;
    w = &other;
    if (n == -1) { w = &p; }   // dead: statically *w may modify p
    a = 3;
    int s = 0;
    int i = 0;
    while (i < n) {
        s = s + *(*q);
        *w = &b;               // address-ambiguous pointer store
        s = s + *(*q);
        i = i + 1;
    }
    print(s);
    print(*p);
    return 0;
}
"""

#: Same chain, but the address really is modified on rare iterations
#: the training input never reaches.
MISSPEC_SRC = """
int a; int b; int c;
int *p;
int *other;
int **q;
int **w;

int main(int n) {
    q = &p;
    p = &a;
    other = &c;
    a = 3;
    b = 9;
    int s = 0;
    int i = 0;
    while (i < n) {
        if (i > 20 && i % 7 == 0) {
            w = &p;            // genuine address aliasing (rare)
        } else {
            w = &other;
        }
        s = s + *(*q);
        *w = &b;               // sometimes really redirects p to b!
        s = s + *(*q);
        i = i + 1;
    }
    print(s);
    print(*p);
    return 0;
}
"""


def compile_spec(src, rounds=2, train=(6,), mode=SpecMode.PROFILE, **opt_kw):
    """Compile with the analyzer off so tests can mutate and re-lint."""
    opts = CompilerOptions(
        opt_level=OptLevel.O3, spec_mode=mode, rounds=rounds,
        speclint=SpecLintMode.OFF, **opt_kw,
    )
    return compile_source(src, opts, train_args=list(train), name="chain")


def find_stmt(out, pred):
    for fn in out.module.iter_functions():
        for block in fn.blocks:
            for i, stmt in enumerate(block.stmts):
                if pred(stmt):
                    return block, i, stmt
    raise AssertionError("expected statement not found")


def is_check(stmt):
    return isinstance(stmt, Assign) and stmt.spec_flag.is_check


# -- seeded miscompiles are caught (the acceptance criterion) ----------


def test_deleted_check_is_caught_at_the_reuse():
    """M1: delete one emitted ld.c — the reuse after the speculated
    store is now unprotected; SPEC002 must name both locations."""
    out = compile_spec(MISSPEC_SRC)
    block, i, _ = find_stmt(
        out, lambda s: is_check(s) and not s.spec_flag.is_branching_check
    )
    del block.stmts[i]
    report = lint_output(out)
    errors = [d for d in report.errors if d.rule == "SPEC002"]
    assert errors, report.format()
    assert errors[0].loc is not None
    assert errors[0].function == "main"


def test_downgraded_cascade_check_is_caught():
    """M2: revert the cascade upgrade — turn the chk.a.nc back into a
    plain ld.c.nc with no recovery (the PR 1 bug)."""
    out = compile_spec(CHAIN_SRC)
    _, _, stmt = find_stmt(
        out, lambda s: is_check(s) and s.spec_flag.is_branching_check
    )
    stmt.spec_flag = SpecFlag.LD_C_NC
    stmt.recovery = None
    report = lint_output(out)
    errors = [d for d in report.errors if d.rule == "SPEC003"]
    assert errors, report.format()
    assert "chk.a" in errors[0].message
    assert errors[0].loc is not None


def test_truncated_recovery_is_caught():
    """M3: recovery that reloads only the checked temp, not the rest of
    the cascade chain (Figure 4 requires the whole chain)."""
    out = compile_spec(CHAIN_SRC)
    _, _, stmt = find_stmt(
        out,
        lambda s: is_check(s) and s.spec_flag.is_branching_check
        and s.recovery,
    )
    stmt.recovery = list(stmt.recovery)[:1]
    report = lint_output(out)
    errors = [d for d in report.errors if d.rule == "SPEC003"]
    assert errors, report.format()
    assert "re-execute" in errors[0].message


def test_strict_mode_fails_the_compilation():
    out = compile_spec(CHAIN_SRC)
    _, _, stmt = find_stmt(
        out, lambda s: is_check(s) and s.spec_flag.is_branching_check
    )
    stmt.spec_flag = SpecFlag.LD_C_NC
    stmt.recovery = None
    with pytest.raises(SpecLintError) as exc:
        run_speclint(out, SpecLintMode.STRICT)
    assert "SPEC003" in str(exc.value)
    # the findings stay on the output even when the phase raises
    assert out.diagnostics


def test_warn_mode_collects_and_emits_trace_events():
    out = compile_spec(CHAIN_SRC)
    _, _, stmt = find_stmt(
        out, lambda s: is_check(s) and s.spec_flag.is_branching_check
    )
    stmt.spec_flag = SpecFlag.LD_C_NC
    stmt.recovery = None
    sink = MemorySink()
    report = run_speclint(out, SpecLintMode.WARN, obs=TraceContext(sink))
    assert report.errors
    events = sink.of_type("speclint.diag")
    assert events and any(e["rule"] == "SPEC003" for e in events)
    assert all("loc" in e and "severity" in e for e in events)


# -- MIR-level rules ---------------------------------------------------


def mir_chk(out):
    from repro.target.isa import ChkA

    fn = out.program.functions["main"]
    chks = [i for i in fn.instrs if isinstance(i, ChkA)]
    assert chks, "cascade must lower to chk.a"
    return fn, chks[0]


def test_mir_unknown_recovery_label():
    out = compile_spec(MISSPEC_SRC)
    _, chk = mir_chk(out)
    chk.recovery_label = ".nowhere"
    errors = [
        d for d in lint_program(out.program)
        if d.rule == "SPEC008" and d.severity is Severity.ERROR
    ]
    assert errors, "retargeted chk.a recovery must be flagged"


def test_mir_recovery_missing_rejoin_branch():
    from repro.target.isa import Br

    out = compile_spec(MISSPEC_SRC)
    fn, chk = mir_chk(out)
    start = fn.label_index(chk.recovery_label) + 1
    for j in range(start, len(fn.instrs)):
        if isinstance(fn.instrs[j], Br):
            del fn.instrs[j]
            break
    else:
        raise AssertionError("recovery has no rejoin branch to delete")
    errors = [d for d in lint_program(out.program) if d.rule == "SPEC008"]
    assert errors, "recovery without a rejoin branch must be flagged"


# -- legal compilations are clean (no false positives) -----------------


@pytest.mark.parametrize("mode", list(SpecMode))
@pytest.mark.parametrize("rounds", [1, 2])
def test_cascade_sources_pass_strict(mode, rounds):
    for src in (CHAIN_SRC, MISSPEC_SRC):
        opts = CompilerOptions(
            opt_level=OptLevel.O3, spec_mode=mode, rounds=rounds
        )
        out = compile_source(src, opts, train_args=[6], name="chain")
        # PRESSURE advisories (the promotion gate's profitability
        # warnings) are not speclint findings: this test guards the
        # safety rules against false positives, so filter them out.
        diags = [d for d in out.diagnostics if d.rule != "PRESSURE"]
        assert not diags, [d.format() for d in diags]


@pytest.mark.parametrize("bench", ["gzip", "mcf", "equake"])
def test_workloads_pass_strict(bench):
    from repro.workloads.programs import get_workload

    w = get_workload(bench)
    for mode in (SpecMode.PROFILE, SpecMode.SOFTWARE):
        opts = CompilerOptions(
            opt_level=OptLevel.O3, spec_mode=mode, rounds=2
        )
        out = compile_source(
            w.source, opts, train_args=list(w.train_args), name=bench
        )
        errors = [d for d in out.diagnostics if d.severity is Severity.ERROR]
        assert not errors, [d.format() for d in errors]


def test_alat_pressure_warning_on_tiny_alat():
    """gzip keeps more advanced loads live in its loop than a 2-entry
    ALAT holds — SPEC006 warns, but never fails the compilation."""
    from repro.workloads.programs import get_workload

    w = get_workload("gzip")
    opts = CompilerOptions(
        opt_level=OptLevel.O3, spec_mode=SpecMode.PROFILE, rounds=1,
        machine=MachineConfig(alat=ALATConfig(entries=2)),
    )
    out = compile_source(
        w.source, opts, train_args=list(w.train_args), name="gzip"
    )
    warns = [d for d in out.diagnostics if d.rule == "SPEC006"]
    assert warns, "2-entry ALAT must trip the pressure heuristic"
    assert all(d.severity is Severity.WARN for d in warns)


# -- translation validation --------------------------------------------


def test_translation_validation_clean():
    opts = CompilerOptions(
        opt_level=OptLevel.O3, spec_mode=SpecMode.PROFILE, rounds=2
    )
    diags = validate_translation(
        MISSPEC_SRC, opts, args=[100], train_args=[15], name="chain"
    )
    assert diags == []


def test_translation_validation_reports_first_divergence():
    """Strip every check from the speculative module: the stale temp
    survives the aliasing store and the print stream diverges — SPEC009
    must carry the Loc of the first divergent print."""
    base = compile_spec(MISSPEC_SRC, mode=SpecMode.NONE)
    spec = compile_spec(MISSPEC_SRC)
    stripped = 0
    for fn in spec.module.iter_functions():
        for block in fn.blocks:
            for i in reversed(range(len(block.stmts))):
                s = block.stmts[i]
                if is_check(s):
                    del block.stmts[i]
                    stripped += 1
    assert stripped, "expected checks to strip"
    diags = diff_executions(
        base.module, spec.module, [100], name="chain"
    )
    assert diags and all(d.rule == "SPEC009" for d in diags)
    assert any(d.loc is not None for d in diags)


# -- rendering and registry --------------------------------------------


def test_diagnostic_rendering_text_and_json():
    out = compile_spec(CHAIN_SRC)
    _, _, stmt = find_stmt(
        out, lambda s: is_check(s) and s.spec_flag.is_branching_check
    )
    stmt.spec_flag = SpecFlag.LD_C_NC
    stmt.recovery = None
    report = lint_output(out)
    text = report.format()
    assert "error: SPEC" in text and "[in main]" in text
    assert "error(s)" in text
    payload = json.loads(report.to_json())
    diags = payload["diagnostics"]
    assert diags and {"rule", "severity", "message", "loc", "line"} <= set(
        diags[0]
    )


def test_rule_table_matches_design_doc():
    """DESIGN.md section 10 is the documented registry; every rule id and
    its invariant text must match RULE_TABLE exactly."""
    with open("DESIGN.md") as f:
        design = f.read()
    section = design.split("## 10.")[1]
    for rule, (invariant, anchor) in RULE_TABLE.items():
        assert f"`{rule}`" in section, f"{rule} missing from DESIGN.md §10"
        assert invariant in section.replace("\n", " "), (
            f"{rule} invariant text drifted from DESIGN.md §10"
        )
        assert anchor in section, f"{rule} paper anchor missing"
    ids = {w.strip("`") for w in section.split() if w.startswith("`SPEC")}
    assert ids == set(RULE_TABLE), "DESIGN.md lists rules not in RULE_TABLE"


# -- verifier call-site checks (rides along in this PR) ----------------


CALL_SRC = """
int g;

int helper(int x) {
    return x + 1;
}

int main(int n) {
    int *q;
    q = &g;
    print(*q);
    return helper(n);
}
"""


def get_call(module):
    for fn in module.iter_functions():
        for stmt in fn.iter_stmts():
            if isinstance(stmt, Call) and stmt.callee == "helper":
                return fn, stmt
    raise AssertionError("no call to helper")


def test_verify_accepts_well_formed_call():
    verify_module(compile_to_ir(CALL_SRC))


def test_verify_rejects_unknown_callee():
    module = compile_to_ir(CALL_SRC)
    _, call = get_call(module)
    call.callee = "nonexistent"
    with pytest.raises(VerificationError, match="unknown function"):
        verify_module(module)


def test_verify_rejects_wrong_arg_count():
    module = compile_to_ir(CALL_SRC)
    _, call = get_call(module)
    call.args.append(call.args[0])
    with pytest.raises(VerificationError, match="argument"):
        verify_module(module)


def test_verify_rejects_result_type_mismatch():
    module = compile_to_ir(CALL_SRC)
    fn, call = get_call(module)
    pointer_var = next(
        v for v in fn.all_variables() if v.type.is_pointer
    )
    call.result = pointer_var
    with pytest.raises(VerificationError, match="result type"):
        verify_module(module)
