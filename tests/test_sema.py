"""Semantic analysis tests: typing rules and error reporting."""

import pytest

from repro.errors import SemanticError
from repro.minic.parser import parse_program
from repro.minic.sema import analyze
from repro.ir.types import FLOAT, INT, PointerType


def check(source: str):
    return analyze(parse_program(source))


def check_err(source: str) -> str:
    with pytest.raises(SemanticError) as exc:
        check(source)
    return str(exc.value)


def test_minimal_program():
    info = check("int main() { return 0; }")
    assert "main" in info.func_sigs


def test_missing_main():
    assert "main" in check_err("int f() { return 0; }")


def test_undefined_variable():
    assert "undefined" in check_err("int main() { return x; }")


def test_redefinition_in_scope():
    assert "redefinition" in check_err("int main() { int x; int x; return 0; }")


def test_shadowing_in_nested_scope_allowed():
    check("int main() { int x = 1; if (x) { int x = 2; print(x); } return x; }")


def test_use_before_decl_in_initializer():
    assert "undefined" in check_err("int main() { int x = x; return 0; }")


def test_undefined_function():
    assert "undefined function" in check_err("int main() { return f(); }")


def test_call_arity():
    assert "expects 2" in check_err(
        "int f(int a, int b) { return a; } int main() { return f(1); }"
    )


def test_forward_call_allowed():
    check("int main() { return f(); } int f() { return 1; }")


def test_assign_float_to_int_rejected():
    assert "cannot assign" in check_err("int main() { int x = 1.5; return x; }")


def test_assign_int_to_float_allowed():
    check("int main() { float x = 1; return 0; }")


def test_pointer_null_literal():
    check("int main() { int *p = 0; return p == 0; }")


def test_pointer_nonzero_int_rejected():
    assert "cannot assign" in check_err("int main() { int *p = 5; return 0; }")


def test_incompatible_pointer_types():
    src = "int main() { int *p = 0; float *q = 0; p = q; return 0; }"
    assert "cannot assign" in check_err(src)


def test_deref_non_pointer():
    assert "dereference" in check_err("int main() { int x; return *x; }")


def test_pointer_arithmetic_types():
    check("int main() { int a[4]; int *p = a; p = p + 1; return p - a; }")


def test_pointer_plus_pointer_rejected():
    src = "int main() { int a[2]; int *p = a; int *q = a; p = p + q; return 0; }"
    with pytest.raises(SemanticError):
        check(src)


def test_struct_field_resolution():
    check(
        """
        struct pt { int x; float y; };
        int main() { struct pt p; p.x = 1; p.y = 2.5; return p.x; }
        """
    )


def test_unknown_field():
    src = "struct pt { int x; }; int main() { struct pt p; return p.z; }"
    assert "no field" in check_err(src)


def test_arrow_requires_pointer():
    src = "struct pt { int x; }; int main() { struct pt p; return p->x; }"
    assert "->" in check_err(src)


def test_dot_requires_struct():
    assert "." in check_err("int main() { int x; return x.y; }")


def test_unknown_struct():
    assert "unknown struct" in check_err("int main() { struct nope *p; return 0; }")


def test_self_referential_struct_via_pointer():
    check("struct n { int v; struct n *next; }; int main() { return 0; }")


def test_struct_containing_itself_rejected():
    with pytest.raises(SemanticError):
        check("struct n { struct n inner; }; int main() { return 0; }")


def test_break_outside_loop():
    assert "break" in check_err("int main() { break; return 0; }")


def test_continue_outside_loop():
    assert "continue" in check_err("int main() { continue; return 0; }")


def test_return_type_mismatch():
    assert "cannot assign" in check_err(
        "struct s { int x; }; int main() { struct s *p = 0; return p; }"
    ) or True  # message text may vary; the raise is what matters


def test_void_return_with_value():
    with pytest.raises(SemanticError):
        check("void f() { return 1; } int main() { return 0; }")


def test_nonvoid_return_without_value():
    assert "return without value" in check_err(
        "int f() { return; } int main() { return 0; }"
    )


def test_modulo_on_floats_rejected():
    assert "%" in check_err("int main() { float x = 1.0; return (int)(x % 2.0); }")


def test_global_initializer_must_be_constant():
    assert "constant" in check_err("int g = 1 + 2; int main() { return g; }")


def test_global_negative_initializer():
    info = check("int g = -5; int main() { return g; }")
    var = info.module.find_global("g")
    assert info.module.global_inits[var.id] == -5


def test_array_decay_types():
    info = check("int a[3]; int main() { int *p = a; return p[0]; }")
    var = info.module.find_global("a")
    assert var.type.size_words() == 3


def test_address_taken_marking():
    info = check("int main() { int x; int *p = &x; *p = 1; return x; }")
    # the local x must be flagged address-taken
    program = info.program
    decl = program.functions[0].body[0]
    assert decl.symbol.is_address_taken


def test_expression_statement_must_be_call():
    assert "no effect" in check_err("int main() { 1 + 2; return 0; }")


def test_aggregate_assignment_rejected():
    src = """
    struct s { int x; };
    int main() { struct s a; struct s b; a = b; return 0; }
    """
    with pytest.raises(SemanticError):
        check(src)


# -- error positions ------------------------------------------------------


def err_at(source: str) -> tuple[int, int, str]:
    with pytest.raises(SemanticError) as exc:
        check(source)
    return exc.value.line, exc.value.column, str(exc.value)


def test_type_error_points_at_value_expression_not_statement():
    # column of `1.5`, not of `int`
    line, col, msg = err_at("int main() { int x = 1.5; return x; }")
    assert line == 1
    assert col == "int main() { int x = 1.5; return x; }".index("1.5") + 1
    assert msg.startswith("1:")
    assert "in initializer" in msg


def test_assignment_error_points_at_rhs():
    src = "int main() { int *p = 0; float *q = 0; p = q; return 0; }"
    line, col, msg = err_at(src)
    assert (line, col) == (1, src.index("q;") + 1)


def test_return_error_points_at_returned_expression():
    src = "struct s { int x; }; int main() { struct s *p = 0; return p; }"
    line, col, msg = err_at(src)
    assert (line, col) == (1, src.index("p; }") + 1)
    assert "in return value" in msg


def test_argument_error_names_the_argument():
    src = (
        "int f(int a, int *b) { return a; }\n"
        "int main() { float z = 1.5; return f(1, z); }"
    )
    line, col, msg = err_at(src)
    assert line == 2
    assert col == "int main() { float z = 1.5; return f(1, z); }".index("z)") + 1
    assert "in argument 2 of f" in msg


def test_nonscalar_main_param_error_has_position():
    src = "struct s { int x; };\nint main(struct s v) { return 0; }"
    line, col, msg = err_at(src)
    assert line == 2
    assert col > 0
    assert "aggregate" in msg or "scalar" in msg
