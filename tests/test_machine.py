"""Code generator + simulator: functional agreement with the
interpreter, counter semantics, and the ALAT protocol end to end."""

import pytest

from repro.errors import MachineError, MachineLimitExceeded
from repro.ir.interp import run_module
from repro.machine.cpu import MachineConfig, Simulator
from repro.minic import compile_to_ir
from repro.pipeline import CompilerOptions, OptLevel, SpecMode, compile_source
from repro.target import format_program, generate_machine_code
from repro.target.isa import Ld, LdC, LoadKind, St


def simulate(src, args=None, opt=OptLevel.O0):
    out = compile_source(src, CompilerOptions(opt_level=opt))
    return out.run(args or [])


def test_simple_arithmetic_matches_interp():
    src = """
    int main(int n) {
        int x = n * 3 + 1;
        print(x);
        print(x / 2);
        print(x % 5);
        print(-x);
        return x;
    }
    """
    for n in (0, 7, -9):
        ref = run_module(compile_to_ir(src), [n])
        res = simulate(src, [n])
        assert res.output == ref.output
        assert res.exit_value == ref.exit_value


def test_float_semantics_match():
    src = """
    float acc;
    int main(int n) {
        float f = 1.5;
        acc = f * n + 0.25;
        print(acc);
        print((int)acc);
        print(acc / 4.0);
        return 0;
    }
    """
    for n in (1, 13):
        ref = run_module(compile_to_ir(src), [n])
        assert simulate(src, [n]).output == ref.output


def test_control_flow_and_calls():
    src = """
    int fib(int n) { if (n < 2) { return n; } return fib(n-1) + fib(n-2); }
    int main() { print(fib(12)); return 0; }
    """
    assert simulate(src).output == ["144"]


def test_heap_and_structs():
    src = """
    struct n { int v; struct n *next; };
    int main(int k) {
        struct n *head = 0;
        for (int i = 0; i < k; i += 1) {
            struct n *nd = alloc(struct n, 1);
            nd->v = i * i;
            nd->next = head;
            head = nd;
        }
        int s = 0;
        while (head != 0) { s += head->v; head = head->next; }
        print(s);
        return 0;
    }
    """
    ref = run_module(compile_to_ir(src), [7])
    assert simulate(src, [7]).output == ref.output


def test_wraparound_matches():
    src = "int main() { int big = 9223372036854775807; print(big + 1); return 0; }"
    assert simulate(src).output == [str(-(2**63))]


def test_division_semantics_match():
    src = """
    int main() {
        print(-7 / 2); print(-7 % 2); print(7 / -2); print(7 % -2);
        return 0;
    }
    """
    assert simulate(src).output == ["-3", "-1", "-3", "1"]


def test_null_store_faults():
    src = "int main() { int *p = 0; *p = 1; return 0; }"
    with pytest.raises(MachineError):
        simulate(src)


def test_instruction_limit():
    src = "int main() { while (1) { } return 0; }"
    out = compile_source(src, CompilerOptions(opt_level=OptLevel.O0))
    config = MachineConfig(max_instructions=10_000)
    with pytest.raises(MachineLimitExceeded):
        Simulator(out.program, config).run([])


# -- counters ------------------------------------------------------------------


def test_promotion_reduces_retired_loads():
    src = """
    int g;
    int main(int n) {
        g = 1;
        int s = 0;
        for (int i = 0; i < n; i += 1) { s += g; }
        return s;
    }
    """
    o0 = simulate(src, [100], OptLevel.O0)
    o2 = simulate(src, [100], OptLevel.O2)
    assert o2.counters.retired_loads < o0.counters.retired_loads
    assert o2.counters.cpu_cycles < o0.counters.cpu_cycles
    assert o2.counters.data_access_cycles < o0.counters.data_access_cycles


def test_check_success_is_free_and_not_a_load():
    """ld.c that always succeeds must retire no loads and add no
    data-access cycles (the paper's central cost claim)."""
    src = """
    int a; int b;
    int *p;
    int main(int n) {
        if (n > 100) { p = &a; } else { p = &b; }
        a = 5;
        int s = 0;
        for (int i = 0; i < n; i += 1) {
            s += a;
            *p = s;
            s += a;
        }
        print(s); print(b);
        return 0;
    }
    """
    out = compile_source(
        src,
        CompilerOptions(opt_level=OptLevel.O3, spec_mode=SpecMode.PROFILE),
        train_args=[10],
    )
    res = out.run([50])  # both train and ref take the p -> b path
    ref = run_module(compile_to_ir(src), [50])
    assert res.output == ref.output
    c = res.counters
    assert c.check_instructions > 0
    assert c.check_failures == 0  # profile holds: p always points to b
    assert c.misspeculation_ratio == 0.0


def test_misspeculation_reloads_and_counts():
    src = """
    int a; int b;
    int *p;
    int main(int n) {
        if (n > 100) { p = &a; } else { p = &b; }
        a = 5;
        int s = 0;
        for (int i = 0; i < n; i += 1) {
            s += a;
            *p = s;
            s += a;
        }
        print(s); print(a); print(b);
        return 0;
    }
    """
    out = compile_source(
        src,
        CompilerOptions(opt_level=OptLevel.O3, spec_mode=SpecMode.PROFILE),
        train_args=[10],  # trains p -> b
    )
    res = out.run([200])  # runs p -> a: every check collides
    ref = run_module(compile_to_ir(src), [200])
    assert res.output == ref.output
    c = res.counters
    assert c.check_failures > 0
    assert 0 < c.misspeculation_ratio <= 1.0


def test_rse_cycles_zero_for_shallow_programs():
    src = "int main() { return 1; }"
    res = simulate(src)
    assert res.counters.rse_cycles == 0


def test_rse_cycles_positive_for_deep_recursion():
    src = """
    int burn(int n) {
        int a1 = n + 1; int a2 = n + 2; int a3 = n + 3; int a4 = n + 4;
        int a5 = n + 5; int a6 = n + 6; int a7 = n + 7; int a8 = n + 8;
        if (n == 0) { return a1; }
        return burn(n - 1) + a1 + a2 + a3 + a4 + a5 + a6 + a7 + a8;
    }
    int main() { return burn(40) % 251; }
    """
    res = simulate(src, [], OptLevel.O1)
    assert res.counters.rse_cycles > 0


def test_direct_vs_indirect_load_classification():
    src = """
    int g;
    int main() {
        int *h = alloc(int, 4);
        h[0] = 2;
        g = h[0];
        print(g + h[0]);
        return 0;
    }
    """
    res = simulate(src, [], OptLevel.O0)
    c = res.counters
    assert c.retired_indirect_loads > 0
    assert c.retired_loads > c.retired_indirect_loads  # g loads are direct


def test_asm_printer_smoke():
    out = compile_source("int main() { return 3; }", CompilerOptions())
    text = format_program(out.program)
    assert "main:" in text and "ret" in text


def test_store_snoops_alat_in_stream():
    """Every st in the stream must reach the ALAT: run a program where
    collisions are certain and confirm the ALAT saw them."""
    src = """
    int a;
    int *p;
    int main(int n) {
        p = &a;
        a = 1;
        int s = 0;
        for (int i = 0; i < n; i += 1) {
            s += a;
            *p = s;
            s += a;
        }
        print(s);
        return 0;
    }
    """
    out = compile_source(
        src,
        CompilerOptions(opt_level=OptLevel.O3, spec_mode=SpecMode.HEURISTIC),
    )
    res = out.run([10])
    ref = run_module(compile_to_ir(src), [10])
    assert res.output == ref.output
