"""Host-side telemetry: spans, the hot-loop profiler, exporters.

Covers the contracts DESIGN.md §13 pins down:

* span nesting/reentrancy/parent linkage and `phase_times` exclusion;
* tracemalloc `mem_kb` peak deltas under `track_memory`;
* HostProfiler bucket accounting (chained timestamps, sub/defer);
* simulated counters byte-identical with the profiler on or off;
* profiler coverage of the measured simulate wall time;
* Chrome trace_event and collapsed-stack exporter structure.
"""

from __future__ import annotations

import json

import pytest

from repro.obs import (
    NULL_TRACE,
    HostProfiler,
    TraceContext,
    chrome_trace,
    collapsed_stacks,
)
from repro.obs.sinks import MemorySink
from repro.pipeline import CompilerOptions, OptLevel, SpecMode, compile_source

ALIASING = """
int main(int n) {
    int a = 1;
    int b = 2;
    int *p = &a;
    int s = 0;
    int i = 0;
    while (i < n) {
        *p = i;
        s = s + a + b;
        i = i + 1;
    }
    return s;
}
"""


def spec_options() -> CompilerOptions:
    return CompilerOptions(
        opt_level=OptLevel.O3, spec_mode=SpecMode.HEURISTIC, fallback=False
    )


# -- spans ---------------------------------------------------------------


def test_span_nesting_and_parent_ids():
    obs = TraceContext()
    with obs.span("outer"):
        with obs.span("inner"):
            pass
        with obs.span("inner"):
            pass
    assert [s.name for s in obs.spans] == ["inner", "inner", "outer"]
    outer = obs.spans[-1]
    assert outer.parent_id is None
    for inner in obs.spans[:2]:
        assert inner.parent_id == outer.span_id
    ids = [s.span_id for s in obs.spans]
    assert len(set(ids)) == 3
    # children's wall time is attributed to the parent
    assert outer.child_wall_ms == pytest.approx(
        sum(s.wall_ms for s in obs.spans[:2])
    )
    assert outer.self_ms <= outer.wall_ms


def test_reentrant_phase_counts_once_in_phase_times():
    obs = TraceContext()
    with obs.phase("work"):
        with obs.phase("work"):
            pass
    # two span records, but the bucket holds only the outer instance
    work_spans = [s for s in obs.spans if s.name == "work"]
    assert len(work_spans) == 2
    outer = max(work_spans, key=lambda s: s.wall_ms)
    assert obs.phase_times["work"] == pytest.approx(
        outer.wall_ms / 1e3, rel=0.01
    )


def test_span_events_emitted_with_linkage():
    sink = MemorySink()
    obs = TraceContext(sink)
    with obs.span("outer"):
        with obs.span("inner"):
            pass
    names = [e["event"] for e in sink.events]
    assert names == ["span.begin", "span.begin", "span.end", "span.end"]
    begin_outer, begin_inner, end_inner, end_outer = sink.events
    assert begin_outer["span"] == "outer"
    assert begin_inner["parent_id"] == begin_outer["span_id"]
    assert end_inner["wall_ms"] >= 0
    assert end_outer["span_id"] == begin_outer["span_id"]


def test_span_error_path_still_brackets():
    sink = MemorySink()
    obs = TraceContext(sink)
    with pytest.raises(ValueError):
        with obs.span("doomed"):
            raise ValueError("boom")
    end = sink.events[-1]
    assert end["event"] == "span.end"
    assert end["error"] == "ValueError: boom"
    assert len(obs.spans) == 1  # still recorded


def test_null_trace_records_no_spans():
    before = len(NULL_TRACE.spans)
    with NULL_TRACE.span("anything"):
        pass
    assert len(NULL_TRACE.spans) == before == 0


def test_track_memory_stamps_mem_kb():
    obs = TraceContext(track_memory=True)
    try:
        with obs.phase("alloc"):
            blob = [bytearray(64 * 1024) for _ in range(8)]  # ~512 KiB
            del blob
        with obs.phase("quiet"):
            pass
    finally:
        obs.close()
    by_name = {s.name: s for s in obs.spans}
    assert by_name["alloc"].mem_kb is not None
    assert by_name["alloc"].mem_kb >= 256  # peak includes the blob
    assert by_name["quiet"].mem_kb is not None
    assert by_name["quiet"].mem_kb < 64
    assert obs.phase_mem_kb["alloc"] == by_name["alloc"].mem_kb


def test_nested_child_peak_visible_in_parent():
    obs = TraceContext(track_memory=True)
    try:
        with obs.phase("parent"):
            with obs.phase("child"):
                blob = bytearray(1024 * 1024)
                del blob
    finally:
        obs.close()
    by_name = {s.name: s for s in obs.spans}
    assert by_name["child"].mem_kb >= 512
    # the child's spike happened inside the parent too
    assert by_name["parent"].mem_kb >= by_name["child"].mem_kb * 0.9


# -- host profiler -------------------------------------------------------


def test_host_profiler_bucket_accounting():
    hp = HostProfiler()
    hp.add("a", 1000, count=2)
    hp.add("a", 500)
    hp.add_sub("b", 200)
    assert hp.ns["a"] == 1500
    assert hp.counts["a"] == 3
    assert hp.take_sub() == 200
    assert hp.take_sub() == 0
    hp.defer(50)
    assert hp.take_sub() == 50
    assert hp.total_ns == 1700
    d = hp.as_dict()
    assert list(d["buckets"]) == ["a", "b"]  # sorted by time desc
    assert d["buckets"]["a"]["count"] == 3


def test_host_profiler_op_key_interned():
    hp = HostProfiler()

    class Ld:
        pass

    k1 = hp.op_key(Ld)
    k2 = hp.op_key(Ld)
    assert k1 is k2
    assert k1 == "sim.op.Ld"
    assert hp.op_key(Ld, "interp.op.") == "sim.op.Ld"  # first prefix wins


def test_host_profiler_merge_and_breakdown():
    a, b = HostProfiler(), HostProfiler()
    a.add("x", 1_000_000)
    b.add("x", 2_000_000)
    b.add("y", 500_000)
    a.merge(b)
    assert a.ns["x"] == 3_000_000
    text = a.format_breakdown(measured_wall_ms=7.0)
    assert "50.0%" in text  # 3.5ms attributed of 7ms
    assert "x" in text and "y" in text


def test_simulator_profile_covers_simulate_wall():
    obs = TraceContext()
    out = compile_source(ALIASING, spec_options(), obs=obs)
    hp = HostProfiler()
    out.run([300], host_profiler=hp)
    simulate_ms = obs.phase_times["simulate"] * 1e3
    # The acceptance bar is 95% on a warmed CI run; keep slack here so
    # a noisy shared runner doesn't flake the unit test.
    assert hp.total_ms >= 0.60 * simulate_ms
    assert hp.total_ms <= 1.05 * simulate_ms  # no double counting
    assert any(k.startswith("sim.op.") for k in hp.ns)
    assert "sim.issue" in hp.ns


def test_counters_identical_with_and_without_profiler():
    out1 = compile_source(ALIASING, spec_options())
    res1 = out1.run([200], host_profiler=HostProfiler())
    out2 = compile_source(ALIASING, spec_options())
    res2 = out2.run([200])
    assert res1.counters.as_dict() == res2.counters.as_dict()
    assert res1.exit_value == res2.exit_value


def test_interpreter_profile_buckets():
    hp = HostProfiler()
    out = compile_source(ALIASING, spec_options())
    res = out.interpret([50], host_profiler=hp)
    assert res.exit_value == out.run([50]).exit_value
    assert "interp.frame" in hp.ns
    assert any(k.startswith("interp.op.") for k in hp.ns)
    assert "interp.op.CondBranch" in hp.ns


# -- exporters -----------------------------------------------------------


def _traced_run():
    obs = TraceContext()
    out = compile_source(ALIASING, spec_options(), obs=obs)
    hp = HostProfiler()
    out.run([100], host_profiler=hp)
    return obs, hp


def test_chrome_trace_structure():
    obs, hp = _traced_run()
    doc = chrome_trace(obs, hp)
    assert doc["displayTimeUnit"] == "ms"
    events = doc["traceEvents"]
    spans = [e for e in events if e.get("cat") == "span"]
    hosts = [e for e in events if e.get("cat") == "host"]
    metas = [e for e in events if e["ph"] == "M"]
    assert spans and hosts and metas
    for e in spans + hosts:
        assert e["ph"] == "X"
        assert e["ts"] >= 0 and e["dur"] >= 0
        assert e["pid"] == 1
    assert {e["tid"] for e in spans} == {1}
    assert {e["tid"] for e in hosts} == {2}
    by_name = {e["name"]: e for e in spans}
    assert "simulate" in by_name and "frontend" in by_name
    # span args carry the linkage
    assert "span_id" in by_name["simulate"]["args"]
    # host slices are anchored at the simulate span's start
    assert hosts[0]["ts"] == pytest.approx(
        by_name["simulate"]["ts"], abs=1.0
    )
    json.dumps(doc)  # serialisable


def test_chrome_trace_without_host_profiler():
    obs, _hp = _traced_run()
    doc = chrome_trace(obs)
    assert all(e.get("cat") != "host" for e in doc["traceEvents"])


def test_collapsed_stacks_format_and_totals():
    obs, hp = _traced_run()
    lines = collapsed_stacks(obs, hp)
    assert lines
    for line in lines:
        stack, value = line.rsplit(" ", 1)
        assert int(value) > 0
        assert stack
    # nested PRE spans produce multi-frame stacks
    assert any(line.startswith("pre;pre.fn") for line in lines)
    # host buckets hang under the simulate anchor
    assert any(line.startswith("simulate;sim.") for line in lines)
    # values tile the span tree: total ≈ sum of root span walls
    total_us = sum(int(line.rsplit(" ", 1)[1]) for line in lines)
    roots_us = sum(
        s.wall_ms * 1e3 for s in obs.spans if s.parent_id is None
    )
    assert total_us == pytest.approx(roots_us, rel=0.05)


def test_disabled_overhead_is_one_check_per_instruction():
    """The zero-overhead contract: no profiler, no span recording on
    NULL_TRACE — an unprofiled run must not allocate telemetry state."""
    out = compile_source(ALIASING, spec_options())
    sim_result = out.run([100])
    assert sim_result.exit_value is not None
    assert out.obs.spans  # the compilation's own context records spans
    assert not NULL_TRACE.spans
