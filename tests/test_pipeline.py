"""Pipeline driver and public API."""

import pytest

import repro
from repro import (
    CompilerOptions,
    OptLevel,
    SpecMode,
    compile_and_run,
    compile_source,
    run_program,
)
from repro.alias.manager import AliasAnalysisKind


SIMPLE = """
int g;
int main(int n) {
    g = n;
    print(g + 1);
    return g;
}
"""


def test_public_api_surface():
    for name in repro.__all__:
        assert hasattr(repro, name), name


def test_compile_and_run_convenience():
    res = compile_and_run(SIMPLE, [4])
    assert res.output == ["5"]
    assert res.exit_value == 4


def test_run_program_oracle():
    res = run_program(SIMPLE, [4])
    assert res.output == ["5"]


def test_opt_levels_monotone_cycles():
    src = """
    int g;
    int main(int n) {
        g = 2;
        int s = 0;
        for (int i = 0; i < n; i += 1) { s += g * i; }
        return s % 100;
    }
    """
    cycles = {}
    for lvl in (OptLevel.O0, OptLevel.O1, OptLevel.O2):
        out = compile_source(src, CompilerOptions(opt_level=lvl))
        cycles[lvl] = out.run([50]).counters.cpu_cycles
    assert cycles[OptLevel.O0] >= cycles[OptLevel.O1] >= cycles[OptLevel.O2]


def test_profile_mode_requires_no_explicit_profile():
    out = compile_source(
        SIMPLE,
        CompilerOptions(opt_level=OptLevel.O3, spec_mode=SpecMode.PROFILE),
        train_args=[1],
    )
    assert out.profile is not None


def test_profile_reuse():
    from repro.minic import compile_to_ir
    from repro.speculation.profile import collect_alias_profile

    module = compile_to_ir(SIMPLE)
    profile, _ = collect_alias_profile(module, [1])
    # NOTE: a profile is only meaningful with the module it was
    # collected on; compile_source recompiles from source, so this is
    # only valid because sid/eid assignment is deterministic per parse.
    out = compile_source(
        SIMPLE,
        CompilerOptions(opt_level=OptLevel.O3, spec_mode=SpecMode.PROFILE),
        profile=profile,
    )
    assert out.profile is profile


def test_steensgaard_configuration():
    out = compile_source(
        SIMPLE,
        CompilerOptions(
            opt_level=OptLevel.O2, alias_analysis=AliasAnalysisKind.STEENSGAARD
        ),
    )
    assert out.alias_manager is not None
    assert out.alias_manager.kind is AliasAnalysisKind.STEENSGAARD
    assert out.run([3]).output == ["4"]


def test_describe():
    opts = CompilerOptions(opt_level=OptLevel.O3, spec_mode=SpecMode.PROFILE)
    text = opts.describe()
    assert "-O3" in text and "profile" in text


def test_machine_config_threading():
    from repro import MachineConfig

    config = MachineConfig(issue_width=1)
    narrow = compile_source(SIMPLE, CompilerOptions(machine=config))
    wide = compile_source(SIMPLE, CompilerOptions())
    n = narrow.run([3])
    w = wide.run([3])
    assert n.output == w.output
    assert n.counters.cpu_cycles > w.counters.cpu_cycles


def test_compile_output_stats_aggregation():
    src = """
    int a; int b; int *p;
    int main(int n) {
        if (n > 10) { p = &a; } else { p = &b; }
        a = 1;
        int s = 0;
        for (int i = 0; i < n; i += 1) { s += a; *p = s; s += a; }
        return s % 100;
    }
    """
    out = compile_source(
        src,
        CompilerOptions(opt_level=OptLevel.O3, spec_mode=SpecMode.PROFILE),
        train_args=[5],
    )
    assert out.total_reloads > 0
    kinds = out.reloads_by_kind()
    assert set(kinds) == {"direct", "indirect"}


def test_interpret_runs_optimised_ir():
    out = compile_source(SIMPLE, CompilerOptions(opt_level=OptLevel.O3))
    assert out.interpret([4]).output == ["5"]
