"""Check-completer selection (Figure 1(c): .nc chain ending in .clr)."""

from repro.ir.stmt import Assign, SpecFlag
from repro.pipeline import CompilerOptions, OptLevel, SpecMode, compile_source
from repro.pre.completers import select_check_completers

from tests.conftest import assert_all_modes_agree

STRAIGHT_LINE = """
int a; int b;
int *r;
int main(int n) {
    if (n > 100) { r = &a; } else { r = &b; }
    a = 2;
    int x = a + 1;
    *r = n;
    int y = a + 3;     // intermediate check: keeps the entry
    *r = n + 1;
    int z = a + 5;     // final check: may clear it
    print(x + y + z);
    return 0;
}
"""

LOOP = """
int a; int b;
int *r;
int main(int n) {
    if (n > 100) { r = &a; } else { r = &b; }
    a = 2;
    int s = 0;
    for (int i = 0; i < n; i += 1) {
        *r = s;
        s = s + a;     // the check must stay .nc inside the loop
    }
    print(s);
    return 0;
}
"""


def checks_of(out):
    return [
        s.spec_flag
        for fn in out.module.iter_functions()
        for s in fn.iter_stmts()
        if isinstance(s, Assign) and s.spec_flag.is_check
    ]


def compile_spec(src):
    return compile_source(
        src,
        CompilerOptions(opt_level=OptLevel.O3, spec_mode=SpecMode.PROFILE),
        train_args=[7],
    )


def test_final_check_cleared_in_straight_line():
    out = compile_spec(STRAIGHT_LINE)
    flags = checks_of(out)
    assert SpecFlag.LD_C in flags, "last check should clear its entry"
    assert flags.count(SpecFlag.LD_C) >= 1


def test_loop_checks_keep_entry():
    out = compile_spec(LOOP)
    # checks inside the loop are reachable from themselves: must be .nc
    loop_flags = [
        s.spec_flag
        for s in out.module.main.iter_stmts()
        if isinstance(s, Assign) and s.spec_flag.is_check
    ]
    assert SpecFlag.LD_C_NC in loop_flags


def test_semantics_preserved_with_clear_completers():
    assert_all_modes_agree(STRAIGHT_LINE, [50], train_args=[7])
    assert_all_modes_agree(STRAIGHT_LINE, [150], train_args=[7])  # mis-spec
    assert_all_modes_agree(LOOP, [23], train_args=[7])


def test_pass_is_idempotent():
    out = compile_spec(STRAIGHT_LINE)
    again = select_check_completers(out.module.main)
    assert again == 0
